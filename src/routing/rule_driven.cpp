#include "routing/rule_driven.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>

#include "ruleengine/parser.hpp"
#include "ruleengine/validate.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

using rules::Value;

namespace {

/// Inputs a tabulated decision may depend on: fully determined by the
/// premise point (dest, in_port, in_vc), the node, the topology and the
/// fault epoch. Notably absent: src, path_len, misrouted — they vary per
/// packet without being part of the premise. The decision cache and the
/// AOT table share this soundness condition.
bool cache_safe_input(const std::string& name) {
  static const char* safe[] = {
      "dest",       "dest_reachable", "escape_ok", "escape_port",
      "in_port",    "in_vc",          "injected",  "link_ok",
      "node",       "on_escape",      "xdes",      "xpos",
      "ydes",       "ypos",
  };
  return std::find_if(std::begin(safe), std::end(safe), [&](const char* s) {
           return name == s;
         }) != std::end(safe);
}

}  // namespace

RuleDrivenRouting::RuleDrivenRouting(std::string program_source, int num_vcs,
                                     rules::ExecMode mode,
                                     std::string route_base, VcId escape_vc)
    : source_(std::move(program_source)),
      route_base_(std::move(route_base)),
      mode_(mode),
      vcs_(num_vcs),
      escape_vc_(escape_vc) {
  FR_REQUIRE(num_vcs >= 1);
  FR_REQUIRE(escape_vc < num_vcs);
}

RuleDrivenRouting::~RuleDrivenRouting() = default;

int RuleDrivenRouting::reconfigure() {
  int exchanges = 0;
  if (escape_vc_ >= 0) exchanges = escape_.rebuild(*faults_);
  // The AOT table is a function of the fault epoch (link_ok,
  // dest_reachable, escape_*): refill it during the same quiescent phase
  // that rebuilds the escape layer. Local recomputation — no exchanges.
  if (img_ != nullptr) fill_aot(*img_);
  refresh_aot_view();
  return exchanges;
}

std::string RuleDrivenRouting::name() const {
  return img_ ? "rule:" + img_->program->name : "rule:<unattached>";
}

std::unique_ptr<RuleDrivenRouting::Image> RuleDrivenRouting::build_image(
    std::string program_source) const {
  FR_REQUIRE(topo_ != nullptr);
  auto im = std::make_unique<Image>();
  im->source = std::move(program_source);
  im->program =
      std::make_unique<rules::Program>(rules::parse_program(im->source));
  rules::require_valid(*im->program);  // reject kind errors before compiling
  const rules::RuleBase* route_rb = im->program->find_rule_base(route_base_);
  FR_REQUIRE_MSG(route_rb != nullptr,
                 "rule program lacks the decision rule base '" + route_base_ +
                     "'");
  im->route_rb = static_cast<int>(route_rb - im->program->rule_bases.data());

  // Resolve every declared input against the host catalog once; unresolved
  // names keep erroring at read time, exactly like the name-keyed path.
  const bool is_mesh2d = mesh_ != nullptr && mesh_->dims() == 2;
  im->input_codes.reserve(im->program->inputs.size());
  for (const rules::InputDecl& in : im->program->inputs) {
    InCode code = InCode::Unknown;
    if (in.name == "node") code = InCode::Node;
    else if (in.name == "dest") code = InCode::Dest;
    else if (in.name == "src") code = InCode::Src;
    else if (in.name == "in_port") code = InCode::InPort;
    else if (in.name == "in_vc") code = InCode::InVc;
    else if (in.name == "injected") code = InCode::Injected;
    else if (in.name == "path_len") code = InCode::PathLen;
    else if (in.name == "misrouted") code = InCode::Misrouted;
    else if (in.name == "link_ok") code = InCode::LinkOk;
    else if (in.name == "dest_reachable") code = InCode::DestReachable;
    else if (escape_vc_ >= 0 && in.name == "on_escape") code = InCode::OnEscape;
    else if (escape_vc_ >= 0 && in.name == "escape_ok") code = InCode::EscapeOk;
    else if (escape_vc_ >= 0 && in.name == "escape_port")
      code = InCode::EscapePort;
    else if (is_mesh2d && in.name == "xpos") code = InCode::XPos;
    else if (is_mesh2d && in.name == "ypos") code = InCode::YPos;
    else if (is_mesh2d && in.name == "xdes") code = InCode::XDes;
    else if (is_mesh2d && in.name == "ydes") code = InCode::YDes;
    im->input_codes.push_back(code);
  }

  const bool has_vm =
      mode_ == rules::ExecMode::Vm || mode_ == rules::ExecMode::Aot;
  im->bytecode = has_vm ? rules::compile_bytecode(*im->program) : nullptr;
  im->cand_event_id = im->bytecode ? im->bytecode->event_id("cand") : -1;

  // One DecisionSlot per node, allocated before the machines so the
  // callbacks can capture stable slot pointers. Everything a decision
  // mutates goes through its node's slot — route() calls on distinct
  // nodes (the sharded network step) share nothing mutable.
  im->slots.assign(static_cast<std::size_t>(topo_->num_nodes()),
                   DecisionSlot{});
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    DecisionSlot* slot = &im->slots[static_cast<std::size_t>(n)];
    slot->owner = this;
    slot->input_codes = im->input_codes.data();
    slot->cand_event_id = im->cand_event_id;
    slot->cand_handler = [slot](const rules::EmittedEvent& ev) {
      const bool is_cand = ev.name_id >= 0
                               ? ev.name_id == slot->cand_event_id
                               : ev.name == "cand";
      if (!is_cand) return;
      // Other events (e.g. state propagation to neighbours) are dropped by
      // this adapter; dedicated tests exercise them through the machines.
      FR_REQUIRE_MSG(ev.args.size() == 3, "!cand needs (port, vc, priority)");
      FR_REQUIRE_MSG(slot->decision != nullptr,
                     "rule program emitted !cand outside a decision");
      slot->owner->add_candidate(*slot->decision,
                                 static_cast<PortId>(ev.args[0].as_int()),
                                 static_cast<VcId>(ev.args[1].as_int()),
                                 static_cast<int>(ev.args[2].as_int()));
    };
    auto em = std::make_unique<rules::EventManager>(
        *im->program, mode_, rules::CompileOptions{}, im->bytecode);
    // The input providers close over the node's slot; the active context is
    // installed there per decision.
    em->set_input_provider(
        [slot](const std::string& input, const std::vector<Value>& idx) {
          FR_REQUIRE_MSG(slot->ctx != nullptr,
                         "rule program read an input outside a decision");
          return slot->owner->input_value(*slot->ctx, input, idx);
        });
    em->set_input_provider_raw(&RuleDrivenRouting::input_raw, slot);
    im->machines.push_back(std::move(em));
  }

  // Tabulation (decision cache / AOT table) is sound only if no reachable
  // rule writes registers and every input read is covered by the premise
  // point + fault epoch.
  const rules::RouteAnalysis analysis =
      rules::analyze_reachable(*im->program, route_base_);
  im->stateless = !analysis.writes_state;
  im->tabulable =
      im->stateless &&
      std::all_of(analysis.inputs_read.begin(), analysis.inputs_read.end(),
                  cache_safe_input);
  im->cache_enabled = has_vm && im->tabulable;
  im->caches.assign(static_cast<std::size_t>(topo_->num_nodes()), NodeCache{});
  // Dest-axis classification (syntactic; fill_aot applies host gates). The
  // verdict rides on the image so rulelint / flexsim can explain the tier.
  im->classify = rules::classify_dest_axis(*im->program, route_base_);
  return im;
}

void RuleDrivenRouting::attach(const Topology& topo, const FaultSet& faults) {
  topo_ = &topo;
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  faults_ = &faults;
  // Flattened coordinates for the offset-sign classifier's hot path (one
  // int16 load per axis instead of a divmod through the Mesh interface).
  coords_x_.clear();
  coords_y_.clear();
  if (mesh_ != nullptr && mesh_->dims() == 2) {
    const NodeId n_nodes = topo.num_nodes();
    coords_x_.resize(static_cast<std::size_t>(n_nodes));
    coords_y_.resize(static_cast<std::size_t>(n_nodes));
    for (NodeId n = 0; n < n_nodes; ++n) {
      coords_x_[static_cast<std::size_t>(n)] =
          static_cast<std::int16_t>(mesh_->x_of(n));
      coords_y_[static_cast<std::size_t>(n)] =
          static_cast<std::int16_t>(mesh_->y_of(n));
    }
  }
  if (escape_vc_ >= 0) escape_.rebuild(faults);
  pending_.reset();
  rolling_ = false;
  node_on_pending_.clear();
  img_ = build_image(source_);
  fill_aot(*img_);
  refresh_aot_view();
}

void RuleDrivenRouting::fill_aot(Image& im) const {
  if (mode_ != rules::ExecMode::Aot || !im.tabulable) {
    // Record why the VM tier stayed — this used to be silent, which made a
    // kept-alive VM indistinguishable from a deliberate one in rulelint
    // --emit-table and flexsim output.
    im.tier = AotTier::Vm;
    if (mode_ != rules::ExecMode::Aot)
      im.tier_reason = "exec mode is not Aot";
    else if (!im.stateless)
      im.tier_reason = "program writes rule state";
    else
      im.tier_reason = "reads inputs outside the premise point";
    return;
  }
  const rules::AotTable::Dims full{
      topo_->num_nodes(), topo_->num_nodes(),
      topo_->degree() + 2,  // in_port in -1 .. degree (degree = injection)
      vcs_ + 1,             // in_vc in -1 .. vcs-1
  };
  im.full_entries = full.entry_count();
  const std::uint64_t epoch = faults_->epoch();
  const bool direct_fresh = !im.aot.empty() && im.aot_epoch == epoch;
  const bool lazy_fresh =
      im.lazy != nullptr && im.lazy_active && im.lazy->epoch == epoch;
  if (direct_fresh || lazy_fresh) return;  // already fresh
  FR_ASSERT_MSG(escape_vc_ < 0 || escape_.built_for_epoch() == epoch,
                "AOT fill needs the escape table rebuilt first");

  // Tier ladder: direct -> compressed -> lazy. A tabulable program always
  // gets *some* table tier — the lazy sub-tables fit any fabric by
  // construction — so the VM tier above is reserved for programs the
  // soundness analysis rejects.
  if (rules::AotTable::within_budget(full, aot_budget_)) {
    fill_direct(im, full);
    im.aot_epoch = epoch;
    im.tier = AotTier::Direct;
    im.classifier_used = rules::DestClassifier::None;
    im.tier_reason = "full premise space (" + std::to_string(im.full_entries) +
                     " entries) fits the budget";
    im.lazy_active = false;
    return;
  }
  if (compress_wanted_ && im.classify.kind != rules::DestClassifier::None) {
    if (fill_compressed(im, full)) {
      im.aot_epoch = epoch;
      im.tier = AotTier::Compressed;
      im.classifier_used = im.classify.kind;
      im.lazy_active = false;
      return;  // fill_compressed recorded the classifier verdict as reason
    }
    // fill_compressed left its demotion reason in tier_reason; fall through.
  } else if (!compress_wanted_) {
    im.tier_reason = "dest-class compression disabled";
  } else {
    im.tier_reason = im.classify.reason;
  }
  setup_lazy(im, full);
  im.aot.clear();
  im.aot_epoch = epoch;
  im.tier = AotTier::Lazy;
  im.classifier_used = rules::DestClassifier::None;
  im.tier_reason = "full premise space (" + std::to_string(im.full_entries) +
                   " entries) over budget (" + std::to_string(aot_budget_) +
                   "); " + im.tier_reason;
  im.lazy_active = true;
}

void RuleDrivenRouting::fill_direct(Image& im,
                                    const rules::AotTable::Dims& dims) const {
  // Evaluate the decision once per premise point through the very engine
  // the fallback path uses — the table is bit-identical to the VM by
  // construction. Nearly every entry packs its candidates inline; the
  // arena only holds the rare oversized sets, so a token reservation
  // suffices.
  im.aot.reset(dims, 256);
  RouteContext ctx;
  ctx.path_len = 0;
  ctx.misrouted = false;
  rules::AotCand buf[kMaxCandidates];
  for (NodeId node = 0; node < dims.nodes; ++node) {
    ctx.node = node;
    ctx.src = node;
    for (NodeId dest = 0; dest < dims.dests; ++dest) {
      ctx.dest = dest;
      for (std::int32_t pa = 0; pa < dims.ports; ++pa) {
        ctx.in_port = pa - 1;
        for (std::int32_t va = 0; va < dims.vcs; ++va) {
          ctx.in_vc = va - 1;
          const std::uint64_t flat = im.aot.flat_index(node, dest, pa, va);
          try {
            const RouteDecision d = compute_route(im, ctx);
            // steps == 0 is the fallback encoding and > 16 bits cannot be
            // stored; header-modifying decisions (none of the adapter's
            // today) are not representable either — all stay on the VM.
            if (d.steps < 1 || d.steps > 0xffff || d.mark_misrouted) continue;
            for (std::size_t i = 0; i < d.candidates.size(); ++i)
              buf[i] = {d.candidates[i].port, d.candidates[i].vc,
                        d.candidates[i].priority};
            im.aot.set_entry(flat, d.steps, buf, d.candidates.size());
          } catch (const std::exception& e) {
            // The exhaustive walk visits premise points no packet can
            // dynamically present — e.g. arrival through a nonexistent
            // boundary link, an escape-VC arrival whose up*/down* phase
            // has no legal move (ContractViolation), or a collapsed-axis
            // value like in_port = -1 outside a declared input domain
            // (EvalError). The engine throws on them exactly as the VM
            // would at runtime; record the point as unreachable and let
            // the fallback reproduce the throw should one ever
            // materialize. Anything else is a build bug: rethrow.
            if (dynamic_cast<const ContractViolation*>(&e) == nullptr &&
                dynamic_cast<const rules::EvalError*>(&e) == nullptr)
              throw;
            DecisionSlot& slot = im.slots[static_cast<std::size_t>(node)];
            slot.ctx = nullptr;
            slot.decision = nullptr;
            slot.scratch.clear();
            im.aot.mark_unreachable(flat);
          }
        }
      }
    }
  }
}

bool RuleDrivenRouting::fill_compressed(
    Image& im, const rules::AotTable::Dims& full) const {
  const NodeId n_nodes = topo_->num_nodes();
  const rules::DestClassifier kind = im.classify.kind;
  rules::AotTable::Dims dims;
  if (kind == rules::DestClassifier::XorFold) {
    // Both id axes collapse to one xor-class axis. bit_ceil keeps every
    // node ^ dest in range when the node count is not a power of two.
    dims = {1,
            static_cast<std::int32_t>(
                std::bit_ceil(static_cast<std::uint32_t>(n_nodes))),
            full.ports, full.vcs};
  } else {
    if (mesh_ == nullptr || mesh_->dims() != 2) {
      im.tier_reason = "offset-sign classifier needs a 2-D mesh host";
      return false;
    }
    dims = {n_nodes, 9, full.ports, full.vcs};
  }
  if (!rules::AotTable::within_budget(dims, aot_budget_)) {
    im.tier_reason = "compressed table (" +
                     std::to_string(dims.entry_count()) +
                     " entries) still over budget";
    return false;
  }

  im.aot.reset(dims, 256);
  RouteContext ctx;
  ctx.path_len = 0;
  ctx.misrouted = false;
  rules::AotCand buf[kMaxCandidates];

  // Reset the VM callback slot after a fill-time throw (same contract as
  // the direct fill: ContractViolation / EvalError mark the point
  // unreachable; anything else is a build bug).
  auto absorb_throw = [&](const std::exception& e, NodeId node) {
    if (dynamic_cast<const ContractViolation*>(&e) == nullptr &&
        dynamic_cast<const rules::EvalError*>(&e) == nullptr)
      throw;  // NOLINT(cert-err60-cpp) — rethrow of the active exception
    DecisionSlot& slot = im.slots[static_cast<std::size_t>(node)];
    slot.ctx = nullptr;
    slot.decision = nullptr;
    slot.scratch.clear();
  };

  // Fill one class row from its representative (node, dest) member.
  auto eval_into = [&](std::uint64_t flat, NodeId node, NodeId dest) {
    ctx.node = node;
    ctx.src = node;
    ctx.dest = dest;
    try {
      const RouteDecision d = compute_route(im, ctx);
      if (d.steps < 1 || d.steps > 0xffff || d.mark_misrouted) return;
      for (std::size_t i = 0; i < d.candidates.size(); ++i)
        buf[i] = {d.candidates[i].port, d.candidates[i].vc,
                  d.candidates[i].priority};
      im.aot.set_entry(flat, d.steps, buf, d.candidates.size());
    } catch (const std::exception& e) {
      absorb_throw(e, node);
      im.aot.mark_unreachable(flat);
    }
  };

  if (kind == rules::DestClassifier::XorFold) {
    for (std::int32_t c = 0; c < dims.dests; ++c) {
      // Any (n, n ^ c) pair is a member of class c; classes with no member
      // under the id bound (non-power-of-two fabrics) are unpresentable.
      NodeId rep = -1;
      for (NodeId n = 0; n < n_nodes; ++n)
        if ((n ^ c) < n_nodes) {
          rep = n;
          break;
        }
      for (std::int32_t pa = 0; pa < dims.ports; ++pa) {
        ctx.in_port = pa - 1;
        for (std::int32_t va = 0; va < dims.vcs; ++va) {
          ctx.in_vc = va - 1;
          const std::uint64_t flat = im.aot.flat_index(0, c, pa, va);
          if (rep < 0)
            im.aot.mark_unreachable(flat);
          else
            eval_into(flat, rep, rep ^ c);
        }
      }
    }
  } else {
    const int w = mesh_->radix(0);
    const int h = mesh_->radix(1);
    for (NodeId node = 0; node < n_nodes; ++node) {
      const int x = mesh_->x_of(node);
      const int y = mesh_->y_of(node);
      for (std::int32_t cls = 0; cls < 9; ++cls) {
        const int sx = cls % 3 - 1;
        const int sy = cls / 3 - 1;
        // The nearest dest with these offset signs; a sign pair pointing
        // off the mesh edge has no member at all.
        const int dx = x + sx;
        const int dy = y + sy;
        const bool presentable = dx >= 0 && dx < w && dy >= 0 && dy < h;
        for (std::int32_t pa = 0; pa < dims.ports; ++pa) {
          ctx.in_port = pa - 1;
          for (std::int32_t va = 0; va < dims.vcs; ++va) {
            ctx.in_vc = va - 1;
            const std::uint64_t flat = im.aot.flat_index(node, cls, pa, va);
            if (!presentable)
              im.aot.mark_unreachable(flat);
            else
              eval_into(flat, node, mesh_->at(dx, dy));
          }
        }
      }
    }
  }

  // Validate against the VM: the classifier proof says every member of a
  // class row decides like the representative; a proof bug must demote, not
  // mis-route. Only resolved rows need checking — unresolved rows fall back
  // to the VM per decision and are correct by construction. Exhaustive when
  // the uncompressed walk is small (the forced-compression test sizes);
  // sampled member witnesses per row beyond that.
  std::vector<rules::AotCand> dec_cands;
  auto matches = [&](std::uint64_t flat, NodeId node, NodeId dest,
                     std::int32_t pa, std::int32_t va) {
    int steps = 0;
    if (!im.aot.decode(flat, steps, dec_cands)) return true;
    ctx.node = node;
    ctx.src = node;
    ctx.dest = dest;
    ctx.in_port = pa - 1;
    ctx.in_vc = va - 1;
    try {
      const RouteDecision d = compute_route(im, ctx);
      if (d.steps != steps || d.mark_misrouted ||
          d.candidates.size() != dec_cands.size())
        return false;
      for (std::size_t i = 0; i < dec_cands.size(); ++i)
        if (d.candidates[i].port != dec_cands[i].port ||
            d.candidates[i].vc != dec_cands[i].vc ||
            d.candidates[i].priority != dec_cands[i].priority)
          return false;
      return true;
    } catch (const std::exception& e) {
      absorb_throw(e, node);
      return false;  // a member throws where the row stored a decision
    }
  };
  auto flat_of = [&](NodeId node, NodeId dest, std::int32_t pa,
                     std::int32_t va) {
    if (kind == rules::DestClassifier::XorFold)
      return im.aot.flat_index(0, node ^ dest, pa, va);
    const int ddx = mesh_->x_of(dest) - mesh_->x_of(node);
    const int ddy = mesh_->y_of(dest) - mesh_->y_of(node);
    const std::int32_t cls =
        ((ddy > 0) - (ddy < 0) + 1) * 3 + ((ddx > 0) - (ddx < 0) + 1);
    return im.aot.flat_index(node, cls, pa, va);
  };
  auto validate = [&]() {
    if (full.entry_count() <= kAotMaxEntries) {
      for (NodeId node = 0; node < n_nodes; ++node)
        for (NodeId dest = 0; dest < n_nodes; ++dest)
          for (std::int32_t pa = 0; pa < full.ports; ++pa)
            for (std::int32_t va = 0; va < full.vcs; ++va)
              if (!matches(flat_of(node, dest, pa, va), node, dest, pa, va))
                return false;
      return true;
    }
    // Sampled: up to two distinct members per class row, every (pa, va).
    if (kind == rules::DestClassifier::XorFold) {
      for (std::int32_t c = 0; c < dims.dests; ++c) {
        int picked = 0;
        for (NodeId n = 0; n < n_nodes && picked < 2; ++n) {
          if ((n ^ c) >= n_nodes) continue;
          ++picked;
          for (std::int32_t pa = 0; pa < dims.ports; ++pa)
            for (std::int32_t va = 0; va < dims.vcs; ++va)
              if (!matches(im.aot.flat_index(0, c, pa, va), n, n ^ c, pa, va))
                return false;
        }
      }
      return true;
    }
    const int w = mesh_->radix(0);
    const int h = mesh_->radix(1);
    for (NodeId node = 0; node < n_nodes; ++node) {
      const int x = mesh_->x_of(node);
      const int y = mesh_->y_of(node);
      for (std::int32_t cls = 0; cls < 9; ++cls) {
        const int sx = cls % 3 - 1;
        const int sy = cls / 3 - 1;
        if (x + sx < 0 || x + sx >= w || y + sy < 0 || y + sy >= h) continue;
        // Witness 1: the nearest member (the fill's representative).
        // Witness 2: two steps out along each nonzero axis where the mesh
        // allows — a member the fill never evaluated.
        const NodeId w1 = mesh_->at(x + sx, y + sy);
        const int x2 = sx == 0 || x + 2 * sx < 0 || x + 2 * sx >= w
                           ? x + sx
                           : x + 2 * sx;
        const int y2 = sy == 0 || y + 2 * sy < 0 || y + 2 * sy >= h
                           ? y + sy
                           : y + 2 * sy;
        const NodeId w2 = mesh_->at(sx == 0 ? x : x2, sy == 0 ? y : y2);
        for (std::int32_t pa = 0; pa < dims.ports; ++pa)
          for (std::int32_t va = 0; va < dims.vcs; ++va) {
            const std::uint64_t flat = im.aot.flat_index(node, cls, pa, va);
            if (!matches(flat, node, w1, pa, va)) return false;
            if (w2 != w1 && !matches(flat, node, w2, pa, va)) return false;
          }
      }
    }
    return true;
  };
  if (!validate()) {
    im.aot.clear();
    im.tier_reason = "compressed layout failed VM validation (" +
                     std::string(rules::to_string(kind)) + "); demoted";
    return false;
  }
  im.tier_reason = im.classify.reason;
  return true;
}

void RuleDrivenRouting::setup_lazy(Image& im,
                                   const rules::AotTable::Dims& full) const {
  const NodeId n_nodes = topo_->num_nodes();
  if (im.lazy == nullptr) im.lazy = std::make_unique<LazyState>();
  LazyState& ls = *im.lazy;
  std::uint64_t per = aot_budget_ / static_cast<std::uint64_t>(n_nodes);
  per = std::bit_floor(std::max<std::uint64_t>(per, kLazyMinPerNode));
  ls.sets = static_cast<std::uint32_t>(per / 2);
  ls.capacity = per;
  ls.ports = full.ports;
  ls.vcs = full.vcs;
  ls.id_bound = full.nodes;
  ls.epoch = faults_->epoch();
  if (ls.nodes.size() != static_cast<std::size_t>(n_nodes)) {
    ls.nodes.clear();
    ls.nodes.resize(static_cast<std::size_t>(n_nodes));
  } else {
    // Epoch refill: drop stale decisions but keep the buffers (no
    // steady-state allocation across fault epochs) and the cumulative
    // counters.
    for (std::unique_ptr<LazyNode>& np : ls.nodes)
      if (np != nullptr) {
        if (np->slots.size() != static_cast<std::size_t>(per))
          np->slots.assign(static_cast<std::size_t>(per), LazySlot{});
        else
          std::fill(np->slots.begin(), np->slots.end(), LazySlot{});
      }
  }
}

void RuleDrivenRouting::route_lazy_miss(const RouteContext& ctx,
                                        RouteDecision& d,
                                        std::uint64_t key) const {
  Image& im = *img_;
  LazyState& ls = *im.lazy;
  std::unique_ptr<LazyNode>& np = ls.nodes[static_cast<std::size_t>(ctx.node)];
  if (np == nullptr) {
    // First touch of this node: allocate its sub-table. Node-scoped, so
    // concurrent first touches on distinct nodes never race (the nodes
    // vector itself was pre-sized at setup and is never resized).
    np = std::make_unique<LazyNode>();
    np->slots.assign(static_cast<std::size_t>(ls.capacity), LazySlot{});
  }
  LazyNode& ln = *np;
  ++ln.misses;
  // Throws (premise points the engine rejects) propagate uncached —
  // identical to what the VM tier does for the same context.
  d = compute_route(im, ctx);
  // Only inline-packable decisions are stored: an arena would grow under
  // traffic (breaking the steady-state zero-allocation property) and could
  // not be reclaimed on eviction. Oversized decisions recompute each time.
  bool storable = d.steps >= 1 && d.steps <= 0xffff && !d.mark_misrouted &&
                  d.candidates.size() <= rules::AotEntry::kInlineCands;
  for (std::size_t i = 0; storable && i < d.candidates.size(); ++i) {
    const RouteCandidate& c = d.candidates[i];
    storable = c.port >= std::numeric_limits<std::int8_t>::min() &&
               c.port <= std::numeric_limits<std::int8_t>::max() &&
               c.vc >= std::numeric_limits<std::int8_t>::min() &&
               c.vc <= std::numeric_limits<std::int8_t>::max() &&
               c.priority >= std::numeric_limits<std::int16_t>::min() &&
               c.priority <= std::numeric_limits<std::int16_t>::max();
  }
  if (!storable) {
    ++ln.uncacheable;
    return;
  }
  rules::AotEntry e{};
  e.steps = static_cast<std::uint16_t>(d.steps);
  e.count = static_cast<std::uint16_t>(d.candidates.size());
  for (std::size_t i = 0; i < d.candidates.size(); ++i)
    e.inl[i] = {static_cast<std::int8_t>(d.candidates[i].port),
                static_cast<std::int8_t>(d.candidates[i].vc),
                static_cast<std::int16_t>(d.candidates[i].priority)};
  const std::uint64_t hh = (key * 0x9E3779B97F4A7C15ull) >> 32;
  const std::size_t base = static_cast<std::size_t>(
      (hh & (static_cast<std::uint64_t>(ls.sets) - 1)) * 2);
  LazySlot* way = &ln.slots[base];
  if (way->tag != 0) {
    if (ln.slots[base + 1].tag == 0) {
      way = &ln.slots[base + 1];
    } else {
      // Both ways live: evict a deterministic, hash-chosen way. Contents
      // may then depend on decision order (which varies with sharding),
      // but the table only affects speed — every stored entry replays a
      // bit-identical VM decision, and misses recompute through the VM.
      way = &ln.slots[base + ((hh >> 17) & 1)];
      ++ln.evictions;
    }
  }
  way->tag = key + 1;
  way->e = e;
}

void RuleDrivenRouting::refresh_aot_view() const {
  aot_view_ = AotView{};
  // During a rolling commit the network runs a mix of two programs; the
  // tables are image-global, so every decision goes through the fallback
  // path until finish_rolling_commit() restores the view.
  if (img_ == nullptr || rolling_) return;
  Image& im = *img_;
  if (!im.aot.empty()) {
    const rules::AotTable& t = im.aot;
    aot_view_.entries = t.entries_raw();
    aot_view_.arena = t.arena_raw();
    aot_view_.nodes = t.dims().nodes;
    aot_view_.dests = t.dims().dests;
    aot_view_.ports = t.dims().ports;
    aot_view_.vcs = t.dims().vcs;
    aot_view_.node_stride = t.node_stride();
    aot_view_.dest_stride = t.dest_stride();
    aot_view_.epoch = im.aot_epoch;
    aot_view_.classifier = im.classifier_used;
    aot_view_.id_bound = topo_->num_nodes();
    aot_view_.xs = coords_x_.empty() ? nullptr : coords_x_.data();
    aot_view_.ys = coords_y_.empty() ? nullptr : coords_y_.data();
  } else if (im.lazy != nullptr && im.lazy_active) {
    aot_view_.lazy = im.lazy.get();
  }
}

void RuleDrivenRouting::prepare_swap(std::string program_source) {
  FR_REQUIRE_MSG(img_ != nullptr, "prepare_swap() before attach()");
  // Build the whole pending image off the critical path. Any failure —
  // parse error, missing rule base, unresolvable input — throws here and
  // leaves the active image serving traffic. (Premise points the engine
  // throws on during the AOT fill are recorded as unreachable, not errors:
  // the exhaustive walk visits combinations real traffic cannot present.)
  std::unique_ptr<Image> im = build_image(std::move(program_source));
  fill_aot(*im);
  pending_ = std::move(im);
}

void RuleDrivenRouting::commit_swap() {
  FR_REQUIRE_MSG(pending_ != nullptr, "commit_swap() without prepare_swap()");
  // A fault epoch may have slipped in between prepare and commit; refill
  // so the installed table is fresh (no-op when it already is).
  fill_aot(*pending_);
  source_ = pending_->source;
  img_ = std::move(pending_);
  refresh_aot_view();
}

void RuleDrivenRouting::begin_rolling_commit() {
  FR_REQUIRE_MSG(pending_ != nullptr,
                 "begin_rolling_commit() without prepare_swap()");
  FR_REQUIRE_MSG(!rolling_, "rolling commit already active");
  rolling_ = true;
  node_on_pending_.assign(static_cast<std::size_t>(topo_->num_nodes()), 0);
  refresh_aot_view();  // drops the tables for the mixed-network window
}

void RuleDrivenRouting::commit_swap_node(NodeId n) {
  FR_REQUIRE_MSG(rolling_, "commit_swap_node() outside a rolling commit");
  FR_REQUIRE(topo_ != nullptr && topo_->valid_node(n));
  node_on_pending_[static_cast<std::size_t>(n)] = 1;
}

void RuleDrivenRouting::finish_rolling_commit() {
  FR_REQUIRE_MSG(rolling_, "finish_rolling_commit() outside a rolling commit");
  rolling_ = false;
  node_on_pending_.clear();
  // commit_swap() refills for any epoch that slipped mid-roll, installs
  // the pending image wholesale and restores the table view.
  commit_swap();
}

rules::EventManager& RuleDrivenRouting::machine(NodeId n) const {
  FR_REQUIRE(topo_ != nullptr && topo_->valid_node(n));
  // Handing out a machine lets the caller mutate rule state behind the
  // table's back (the decision cache guards against that with per-lookup
  // env-version tags; the AOT path deliberately carries no per-decision
  // check). Drop the table conservatively: decisions fall back to the
  // VM/cache tiers until the next fill (reconfigure or swap) rebuilds it.
  if (img_ != nullptr &&
      (!img_->aot.empty() || (img_->lazy != nullptr && img_->lazy_active))) {
    img_->aot.clear();
    img_->lazy_active = false;
    refresh_aot_view();
  }
  return *img_->machines[static_cast<std::size_t>(n)];
}

std::int64_t RuleDrivenRouting::decision_cache_hits() const {
  if (img_ == nullptr) return 0;
  std::int64_t sum = 0;
  for (const DecisionSlot& s : img_->slots) sum += s.cache_hits;
  return sum;
}

std::int64_t RuleDrivenRouting::decision_cache_misses() const {
  if (img_ == nullptr) return 0;
  std::int64_t sum = 0;
  for (const DecisionSlot& s : img_->slots) sum += s.cache_misses;
  return sum;
}

void RuleDrivenRouting::clear_decision_cache() const {
  if (img_ == nullptr) return;
  for (NodeCache& nc : img_->caches) {
    nc.entries.clear();
    nc.epoch_tag = ~std::uint64_t{0};
    nc.env_tag = ~std::uint64_t{0};
  }
}

rules::AotTable::Stats RuleDrivenRouting::aot_stats() const {
  return img_ != nullptr ? img_->aot.stats() : rules::AotTable::Stats{};
}

RuleDrivenRouting::AotTierInfo RuleDrivenRouting::aot_tier_info() const {
  AotTierInfo info;
  if (img_ == nullptr) {
    info.reason = "not attached";
    return info;
  }
  const Image& im = *img_;
  info.tier = im.tier;
  info.classifier = im.classifier_used;
  info.reason = im.tier_reason;
  info.full_entries = im.full_entries;
  switch (im.tier) {
    case AotTier::Direct:
    case AotTier::Compressed:
      info.table_entries = im.aot.dims().entry_count();
      break;
    case AotTier::Lazy: {
      const LazyState& ls = *im.lazy;
      info.lazy_capacity_per_node = ls.capacity;
      // Report the allocation bound (every node touched), not the current
      // footprint — the ratio then does not depend on traffic history.
      info.table_entries =
          ls.capacity * static_cast<std::uint64_t>(ls.nodes.size());
      for (const std::unique_ptr<LazyNode>& np : ls.nodes)
        if (np != nullptr) {
          ++info.lazy_nodes_allocated;
          info.lazy_hits += np->hits;
          info.lazy_misses += np->misses;
          info.lazy_evictions += np->evictions;
          info.lazy_uncacheable += np->uncacheable;
        }
      break;
    }
    case AotTier::Vm:
      break;
  }
  if (info.table_entries > 0)
    info.compression_ratio = static_cast<double>(info.full_entries) /
                             static_cast<double>(info.table_entries);
  return info;
}

Value RuleDrivenRouting::input_by_code(InCode code, const RouteContext& ctx,
                                       const Value* idx,
                                       std::size_t nidx) const {
  switch (code) {
    case InCode::Node: return Value::make_int(ctx.node);
    case InCode::Dest: return Value::make_int(ctx.dest);
    case InCode::Src: return Value::make_int(ctx.src);
    case InCode::InPort: return Value::make_int(ctx.in_port);
    case InCode::InVc:
      return Value::make_int(std::max<VcId>(ctx.in_vc, 0));
    case InCode::Injected:
      return Value::make_bool(ctx.in_port < 0 ||
                              ctx.in_port >= topo_->degree());
    case InCode::PathLen: return Value::make_int(ctx.path_len);
    case InCode::Misrouted: return Value::make_bool(ctx.misrouted);
    case InCode::LinkOk: {
      FR_REQUIRE_MSG(nidx == 1, "link_ok takes one direction index");
      const auto p = static_cast<PortId>(idx[0].as_int());
      if (p < 0 || p >= topo_->degree()) return Value::make_bool(false);
      return Value::make_bool(faults_->link_usable(ctx.node, p));
    }
    case InCode::DestReachable:
      return Value::make_bool(connected(*faults_, ctx.node, ctx.dest));
    case InCode::OnEscape:
      return Value::make_bool(ctx.in_vc == escape_vc_ && ctx.in_port >= 0 &&
                              ctx.in_port < topo_->degree());
    case InCode::EscapeOk:
      return Value::make_bool(escape_.reachable(ctx.node, ctx.dest));
    case InCode::EscapePort: {
      // Deterministic escape hop; the injection port signals "none".
      if (ctx.dest == ctx.node || !escape_.reachable(ctx.node, ctx.dest))
        return Value::make_int(topo_->degree());
      const bool on_escape = ctx.in_vc == escape_vc_ && ctx.in_port >= 0 &&
                             ctx.in_port < topo_->degree();
      UpDownTable::Phase phase = UpDownTable::Phase::Up;
      if (on_escape) {
        const NodeId prev = topo_->neighbor(ctx.node, ctx.in_port);
        phase = escape_.is_up_move(
                    prev, topo_->reverse_port(ctx.node, ctx.in_port))
                    ? UpDownTable::Phase::Up
                    : UpDownTable::Phase::Down;
      }
      return Value::make_int(
          escape_.next_hops(ctx.node, ctx.dest, phase)[0]);
    }
    case InCode::XPos: return Value::make_int(mesh_->x_of(ctx.node));
    case InCode::YPos: return Value::make_int(mesh_->y_of(ctx.node));
    case InCode::XDes: return Value::make_int(mesh_->x_of(ctx.dest));
    case InCode::YDes: return Value::make_int(mesh_->y_of(ctx.dest));
    case InCode::Unknown: break;
  }
  FR_REQUIRE_MSG(false, "rule program input is not in the host catalog");
  return Value::make_int(0);
}

Value RuleDrivenRouting::input_raw(void* ctx, std::int32_t input_id,
                                   const Value* idx, std::size_t nidx) {
  const auto* slot = static_cast<const DecisionSlot*>(ctx);
  FR_REQUIRE_MSG(slot->ctx != nullptr,
                 "rule program read an input outside a decision");
  return slot->owner->input_by_code(
      slot->input_codes[static_cast<std::size_t>(input_id)], *slot->ctx, idx,
      nidx);
}

void RuleDrivenRouting::event_sink(void* ctx, std::int32_t name_id,
                                   std::int32_t target_rb, const Value* args,
                                   std::size_t nargs) {
  auto* slot = static_cast<DecisionSlot*>(ctx);
  if (target_rb >= 0) {
    // Rule-bound event: queue for the cascade loop in compute_route. The
    // args must outlive this call, so they are the one copy on this path.
    rules::EmittedEvent& ev = slot->scratch.emplace_back();
    ev.name_id = name_id;
    ev.target_rb = target_rb;
    ev.args.assign(args, args + nargs);
    return;
  }
  // Host-bound events other than !cand are dropped by this adapter (state
  // propagation to neighbours etc. is exercised through the machines).
  if (name_id != slot->cand_event_id) return;
  FR_REQUIRE_MSG(nargs == 3, "!cand needs (port, vc, priority)");
  FR_REQUIRE_MSG(slot->decision != nullptr,
                 "rule program emitted !cand outside a decision");
  slot->owner->add_candidate(*slot->decision,
                             static_cast<PortId>(args[0].as_int()),
                             static_cast<VcId>(args[1].as_int()),
                             static_cast<int>(args[2].as_int()));
}

Value RuleDrivenRouting::input_value(const RouteContext& ctx,
                                     const std::string& name,
                                     const std::vector<Value>& idx) const {
  if (name == "node") return Value::make_int(ctx.node);
  if (name == "dest") return Value::make_int(ctx.dest);
  if (name == "src") return Value::make_int(ctx.src);
  if (name == "in_port") return Value::make_int(ctx.in_port);
  if (name == "in_vc")
    return Value::make_int(std::max<VcId>(ctx.in_vc, 0));
  if (name == "injected")
    return Value::make_bool(ctx.in_port < 0 || ctx.in_port >= topo_->degree());
  if (name == "path_len") return Value::make_int(ctx.path_len);
  if (name == "misrouted") return Value::make_bool(ctx.misrouted);
  if (name == "link_ok") {
    FR_REQUIRE_MSG(idx.size() == 1, "link_ok takes one direction index");
    const auto p = static_cast<PortId>(idx[0].as_int());
    if (p < 0 || p >= topo_->degree()) return Value::make_bool(false);
    return Value::make_bool(faults_->link_usable(ctx.node, p));
  }
  if (name == "dest_reachable")
    return Value::make_bool(connected(*faults_, ctx.node, ctx.dest));
  if (escape_vc_ >= 0) {
    const bool on_escape = ctx.in_vc == escape_vc_ && ctx.in_port >= 0 &&
                           ctx.in_port < topo_->degree();
    if (name == "on_escape") return Value::make_bool(on_escape);
    if (name == "escape_ok")
      return Value::make_bool(escape_.reachable(ctx.node, ctx.dest));
    if (name == "escape_port") {
      // Deterministic escape hop; the injection port signals "none".
      if (ctx.dest == ctx.node || !escape_.reachable(ctx.node, ctx.dest))
        return Value::make_int(topo_->degree());
      UpDownTable::Phase phase = UpDownTable::Phase::Up;
      if (on_escape) {
        const NodeId prev = topo_->neighbor(ctx.node, ctx.in_port);
        phase = escape_.is_up_move(
                    prev, topo_->reverse_port(ctx.node, ctx.in_port))
                    ? UpDownTable::Phase::Up
                    : UpDownTable::Phase::Down;
      }
      return Value::make_int(
          escape_.next_hops(ctx.node, ctx.dest, phase)[0]);
    }
  }
  if (mesh_ != nullptr && mesh_->dims() == 2) {
    if (name == "xpos") return Value::make_int(mesh_->x_of(ctx.node));
    if (name == "ypos") return Value::make_int(mesh_->y_of(ctx.node));
    if (name == "xdes") return Value::make_int(mesh_->x_of(ctx.dest));
    if (name == "ydes") return Value::make_int(mesh_->y_of(ctx.dest));
  }
  FR_REQUIRE_MSG(false, "rule program input '" + name +
                            "' is not in the host catalog");
  return Value::make_int(0);
}

void RuleDrivenRouting::add_candidate(RouteDecision& d, PortId port, VcId vc,
                                      int prio) const {
  FR_REQUIRE_MSG(port >= 0 && port <= topo_->degree(),
                 "rule program produced an invalid port");
  FR_REQUIRE_MSG(vc >= 0 && vc < vcs_,
                 "rule program produced an invalid VC");
  d.candidates.push_back({port, vc, prio});
}

RouteDecision RuleDrivenRouting::compute_route(Image& im,
                                               const RouteContext& ctx) const {
  FR_REQUIRE(topo_ != nullptr && topo_->valid_node(ctx.node));
  rules::EventManager& em = *im.machines[static_cast<std::size_t>(ctx.node)];
  DecisionSlot& slot = im.slots[static_cast<std::size_t>(ctx.node)];
  slot.ctx = &ctx;

  RouteDecision d;
  slot.decision = &d;

  int steps;
  std::optional<rules::Value> returned;
  if (mode_ == rules::ExecMode::Vm || mode_ == rules::ExecMode::Aot) {
    // Direct VM path: fire the decision rule base and run the event cascade
    // inline — no queue, no handler reinstall, no name dispatch. Events
    // bound to a rule base re-fire (and count as steps, exactly like
    // drain()); host-bound events go through the candidate adapter.
    rules::Vm& vm = *em.vm();
    if (!em.queue_empty()) em.drain();  // host-posted backlog first
    // Host-bound events feed the candidate adapter straight from the
    // register file (event_sink, zero materialization); rule-bound events
    // are queued and re-fired below. Handler order equals drain()'s FIFO:
    // fires happen in the same order either way, and within one fire the
    // sink sees emissions in program order.
    std::vector<rules::EmittedEvent>& work = slot.scratch;
    work.clear();
    void* const sink_ctx = &slot;
    returned = vm.fire_fast(im.route_rb, {}, &RuleDrivenRouting::event_sink,
                            sink_ctx);
    steps = 1;
    for (std::size_t next = 0; next < work.size(); ++next) {
      const int rb = work[next].target_rb;
      const std::vector<rules::Value> args = std::move(work[next].args);
      vm.fire_fast(rb, args, &RuleDrivenRouting::event_sink, sink_ctx);
      ++steps;
    }
    work.clear();
  } else {
    // Reinstall per decision: tests may have swapped the machine's handler
    // (last installed wins), and the slot's copy fits std::function's small
    // buffer — no allocation on this path.
    em.set_host_handler_fast(slot.cand_handler);
    const auto interpretations_before = em.total_interpretations();
    const rules::FireResult r = em.fire(route_base_, {});
    em.drain();
    steps = static_cast<int>(em.total_interpretations() -
                             interpretations_before);
    returned = r.returned;
  }

  const std::optional<rules::Value>& r_returned = returned;
  if (r_returned) {
    PortId port;
    if (r_returned->is_int()) {
      port = static_cast<PortId>(r_returned->as_int());
    } else {
      const rules::RuleBase& rb = im.program->rule_base(route_base_);
      FR_REQUIRE_MSG(rb.returns.has_value(),
                     "symbolic RETURN without a RETURNS domain");
      port = static_cast<PortId>(rb.returns->index_of(*r_returned));
    }
    // A RETURNed port means "any VC of that port".
    if (port == topo_->degree()) {
      add_candidate(d, port, 0, 0);
    } else {
      for (VcId v = 0; v < vcs_; ++v) add_candidate(d, port, v, 0);
    }
  }

  d.steps = steps;
  slot.ctx = nullptr;
  slot.decision = nullptr;
  return d;
}

/// The non-AOT tiers, kept out of route() and filling the caller's object
/// in place: route()'s AOT hit keeps NRVO (a second named return object in
/// the same function would defeat it) and the fallback pays no extra
/// temporary.
void RuleDrivenRouting::route_fallback(const RouteContext& ctx,
                                       RouteDecision& d) const {
  FR_REQUIRE_MSG(img_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(escape_vc_ < 0 ||
                     escape_.built_for_epoch() == faults_->epoch(),
                 "stale escape table: reconfigure() missed an epoch");
  // Rolling commit window: nodes already flipped decide with the pending
  // program, the rest with the active one.
  Image& im =
      rolling_ && node_on_pending_[static_cast<std::size_t>(ctx.node)] != 0
          ? *pending_
          : *img_;
  if (!im.cache_enabled || !cache_wanted_) {
    d = compute_route(im, ctx);
    return;
  }

  NodeCache& nc = im.caches[static_cast<std::size_t>(ctx.node)];
  const std::uint64_t epoch = faults_->epoch();
  const std::uint64_t env_ver =
      im.machines[static_cast<std::size_t>(ctx.node)]->env().version();
  if (nc.epoch_tag != epoch || nc.env_tag != env_ver) {
    nc.entries.clear();
    nc.epoch_tag = epoch;
    nc.env_tag = env_ver;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx.dest)) << 16) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(ctx.in_port + 1))
       << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(ctx.in_vc + 1));
  const auto it = nc.entries.find(key);
  if (it != nc.entries.end()) {
    ++im.slots[static_cast<std::size_t>(ctx.node)].cache_hits;
    d = it->second;
    return;
  }
  ++im.slots[static_cast<std::size_t>(ctx.node)].cache_misses;
  d = compute_route(im, ctx);
  // A stateless program cannot have bumped the env version; the fault epoch
  // cannot change mid-decision. The tags taken above are still valid.
  nc.entries.emplace(key, d);
}

}  // namespace flexrouter
