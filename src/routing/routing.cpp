#include "routing/routing.hpp"

#include <vector>

#include "routing/dor.hpp"
#include "routing/dor_torus.hpp"
#include "routing/nafta.hpp"
#include "routing/nara.hpp"
#include "routing/planar_adaptive.hpp"
#include "routing/route_c.hpp"
#include "routing/spanning_tree.hpp"
#include "routing/updown.hpp"

namespace flexrouter {

std::unique_ptr<RoutingAlgorithm> make_algorithm(const std::string& name) {
  if (name == "dor-mesh") return std::make_unique<DimensionOrderMesh>();
  if (name == "ecube") return std::make_unique<ECubeHypercube>();
  if (name == "nara") return std::make_unique<Nara>();
  if (name == "nafta") return std::make_unique<Nafta>();
  if (name == "route_c") return std::make_unique<RouteC>();
  if (name == "route_c_nft") return std::make_unique<StrippedRouteC>();
  if (name == "updown") return std::make_unique<UpDownRouting>();
  if (name == "spanning-tree") return std::make_unique<SpanningTreeRouting>();
  if (name == "dor-torus") return std::make_unique<DimensionOrderTorus>();
  if (name == "planar-adaptive")
    return std::make_unique<PlanarAdaptive>(false);
  if (name == "planar-adaptive-ft")
    return std::make_unique<PlanarAdaptive>(true);
  FR_REQUIRE_MSG(false, "unknown routing algorithm '" + name + "'");
  return nullptr;
}

std::vector<std::string> algorithm_names() {
  return {"dor-mesh",      "ecube",         "nara",
          "nafta",         "route_c",       "route_c_nft",
          "updown",        "spanning-tree", "dor-torus",
          "planar-adaptive", "planar-adaptive-ft"};
}

}  // namespace flexrouter
