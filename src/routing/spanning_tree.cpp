#include "routing/spanning_tree.hpp"

#include <deque>

namespace flexrouter {

int SpanningTreeRouting::reconfigure() {
  const NodeId n = topo_->num_nodes();
  tree_ = bfs_spanning_tree(*faults_, choose_tree_root(*faults_));
  epoch_ = faults_->epoch();
  next_hop_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                   kInvalidPort);

  // Tree adjacency: child -> parent (parent_port) and parent -> child.
  std::vector<std::vector<std::pair<NodeId, PortId>>> adj(
      static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId parent = tree_.parent[static_cast<std::size_t>(v)];
    if (parent == kInvalidNode) continue;
    const PortId up = tree_.parent_port[static_cast<std::size_t>(v)];
    adj[static_cast<std::size_t>(v)].emplace_back(parent, up);
    adj[static_cast<std::size_t>(parent)].emplace_back(
        v, topo_->reverse_port(v, up));
  }

  // Per-destination BFS over tree edges; paths in a tree are unique.
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!tree_.reaches(dest)) continue;
    std::deque<NodeId> queue{dest};
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    seen[static_cast<std::size_t>(dest)] = 1;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      // adj[v] lists (neighbour u, port from v to u); the port from u back
      // toward v (and hence toward dest) is its reverse.
      for (const auto& [u, port_from_v] : adj[static_cast<std::size_t>(v)]) {
        if (seen[static_cast<std::size_t>(u)]) continue;
        seen[static_cast<std::size_t>(u)] = 1;
        next_hop_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(dest)] =
            topo_->reverse_port(v, port_from_v);
        queue.push_back(u);
      }
    }
  }

  // Reconfiguration cost: the full tree rebuild touches every usable link.
  int usable = 0;
  for (NodeId u = 0; u < n; ++u)
    for (PortId p = 0; p < topo_->degree(); ++p)
      if (faults_->link_usable(u, p)) ++usable;
  return usable;
}

RouteDecision SpanningTreeRouting::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(!next_hop_.empty(), "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(), "stale spanning tree");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({topo_->degree(), 0, 0});
    return d;
  }
  const PortId p = next_hop_[static_cast<std::size_t>(ctx.node) *
                                 static_cast<std::size_t>(topo_->num_nodes()) +
                             static_cast<std::size_t>(ctx.dest)];
  if (p == kInvalidPort) return d;  // unreachable destination
  for (VcId v = 0; v < vcs_; ++v) d.candidates.push_back({p, v, 0});
  return d;
}

double SpanningTreeRouting::link_usage_fraction() const {
  FR_REQUIRE(!next_hop_.empty());
  int healthy_links = 0;
  for (const LinkRef& l : topo_->undirected_links())
    if (faults_->link_usable(l.node, l.port)) ++healthy_links;
  int tree_links = 0;
  for (NodeId v = 0; v < topo_->num_nodes(); ++v)
    if (tree_.parent[static_cast<std::size_t>(v)] != kInvalidNode) ++tree_links;
  return healthy_links == 0
             ? 0.0
             : static_cast<double>(tree_links) / healthy_links;
}

}  // namespace flexrouter
