// Dynamic deadlock avoidance, and its fault vulnerability (Section 3).
//
// The paper: "Another group of deadlock avoidance concepts can be called
// dynamic because the state of the system is incorporated. The basis of
// this scheme is the existence of a static deadlock prevention method.
// Links can be used as long as there is space available in a corresponding
// buffer. If no space is available, the static method has to be used. ...
// But this scheme is very vulnerable to faults. For example the fault of
// one link can separate several node pairs in the statically deadlock-free
// network ... Thus in this case already a single fault causes
// reconfiguration of some network nodes."
//
// This class models exactly that construction on a 2-D mesh: VC 1 is the
// dynamic layer (fully adaptive minimal, usable whenever buffer space
// exists), VC 0 is the static layer — plain XY dimension order, FIXED at
// attach time with no fault handling. A single faulty link on a packet's
// XY path removes its static fallback; packets at the break with no
// adaptive alternative stall, and the deadlock guarantee is void. The
// bench/dynamic_vulnerability binary demonstrates the failure and the
// repair-by-reconfiguration the paper says is then required (modelled by
// `allow_reconfiguration(true)`, which lets the static layer recompute —
// at the cost the paper attributes to it).
#pragma once

#include "routing/nara.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class DynamicEscape final : public RoutingAlgorithm {
 public:
  static constexpr VcId kStaticVc = 0;
  static constexpr VcId kDynamicVc = 1;

  explicit DynamicEscape(bool allow_reconfiguration = false)
      : reconfigurable_(allow_reconfiguration) {}

  std::string name() const override {
    return reconfigurable_ ? "dynamic-escape+reconf" : "dynamic-escape";
  }
  int num_vcs() const override { return 2; }
  bool is_escape_vc(VcId vc) const override { return vc == kStaticVc; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

 private:
  void add_static_escape(const RouteContext& ctx, RouteDecision& d) const;

  const Mesh* mesh_ = nullptr;
  const FaultSet* faults_ = nullptr;
  bool reconfigurable_;
  /// Reconfigurable mode rebuilds an up*/down* static layer on faults;
  /// the vulnerable mode keeps fault-free XY forever.
  UpDownTable reconf_escape_;
  bool use_reconf_escape_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace flexrouter
