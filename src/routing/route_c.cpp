#include "routing/route_c.hpp"

namespace flexrouter {

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::Safe: return "safe";
    case NodeState::OrdinarilyUnsafe: return "ounsafe";
    case NodeState::StronglyUnsafe: return "sunsafe";
    case NodeState::Faulty: return "faulty";
  }
  return "?";
}

void RouteC::attach(const Topology& topo, const FaultSet& faults) {
  cube_ = dynamic_cast<const Hypercube*>(&topo);
  FR_REQUIRE_MSG(cube_ != nullptr, "ROUTE_C requires a hypercube");
  faults_ = &faults;
  max_path_len_ = 4 * cube_->dimension() + 8;
  reconfigure();
}

int RouteC::reconfigure() {
  int exchanges = escape_.rebuild(*faults_);
  const auto n = static_cast<std::size_t>(cube_->num_nodes());
  states_.assign(n, NodeState::Safe);
  for (NodeId v = 0; v < cube_->num_nodes(); ++v)
    if (faults_->node_faulty(v))
      states_[static_cast<std::size_t>(v)] = NodeState::Faulty;

  // Monotone fixed point over the state lattice safe < ounsafe < sunsafe:
  // each round every node exchanges states with its neighbours (the wave
  // propagation of the update_state rule base, Figure 4).
  settle_rounds_ = 0;
  bool changed = !faults_->fault_free();
  while (changed) {
    changed = false;
    ++settle_rounds_;
    for (NodeId v = 0; v < cube_->num_nodes(); ++v) {
      auto& st = states_[static_cast<std::size_t>(v)];
      if (st == NodeState::Faulty) continue;
      int hard = 0;    // faulty neighbours or faulty incident links
      int unsafe = 0;  // neighbours that are faulty or strongly unsafe
      for (PortId p = 0; p < cube_->degree(); ++p) {
        const NodeId m = cube_->neighbor(v, p);
        const NodeState ms = states_[static_cast<std::size_t>(m)];
        const bool link_bad = faults_->link_marked_faulty(v, p);
        if (ms == NodeState::Faulty || link_bad) ++hard;
        // Ordinarily-unsafe neighbours do NOT count here — unbounded
        // cascades would declare nearly fault-free networks "totally
        // unsafe". Only hard faults and strongly unsafe nodes propagate.
        if (ms == NodeState::Faulty || ms == NodeState::StronglyUnsafe ||
            link_bad)
          ++unsafe;
      }
      NodeState next = NodeState::Safe;
      if (hard >= 2) next = NodeState::StronglyUnsafe;
      else if (unsafe >= 2) next = NodeState::OrdinarilyUnsafe;
      if (next > st) {  // monotone: states only climb the lattice
        st = next;
        changed = true;
      }
      exchanges += faults_->fault_free() ? 0 : cube_->degree();
    }
  }
  epoch_ = faults_->epoch();
  return exchanges;
}

bool RouteC::totally_unsafe() const {
  for (NodeId v = 0; v < cube_->num_nodes(); ++v)
    if (states_[static_cast<std::size_t>(v)] == NodeState::Safe) return false;
  return true;
}

int RouteC::num_unsafe() const {
  int c = 0;
  for (const NodeState s : states_)
    c += s == NodeState::OrdinarilyUnsafe || s == NodeState::StronglyUnsafe;
  return c;
}

bool RouteC::transit_ok(NodeId neighbor, NodeId dest) const {
  if (neighbor == dest) return true;
  return states_[static_cast<std::size_t>(neighbor)] == NodeState::Safe;
}

void RouteC::add_escape(const RouteContext& ctx, RouteDecision& d) const {
  UpDownTable::Phase phase = UpDownTable::Phase::Up;
  if (ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < cube_->degree()) {
    const NodeId prev = cube_->neighbor(ctx.node, ctx.in_port);
    phase = escape_.is_up_move(prev, cube_->reverse_port(ctx.node, ctx.in_port))
                ? UpDownTable::Phase::Up
                : UpDownTable::Phase::Down;
  }
  if (!escape_.reachable(ctx.node, ctx.dest)) return;
  for (const PortId p : escape_.next_hops(ctx.node, ctx.dest, phase))
    d.candidates.push_back({p, kEscapeVc, -3});
}

RouteDecision RouteC::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(cube_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(),
                 "stale ROUTE_C state: reconfigure() missed an epoch");
  RouteDecision d;
  d.steps = 2;  // decide_dir + decide_vc, always (Section 5)
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({cube_->degree(), 0, 0});
    return d;
  }

  // Escape stickiness (see Nafta::route for the rationale).
  if (ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < cube_->degree()) {
    add_escape(ctx, d);
    return d;
  }

  const bool fault_free = faults_->fault_free();
  const auto diff = Hypercube::differing_dims(ctx.node, ctx.dest);
  FR_ASSERT(diff != 0);

  // Kon90 order: ascending phase corrects 0->1 dimensions on VC 0; once
  // none remain, descending corrections run on VC 1.
  std::uint32_t asc = 0, desc = 0;
  for (int b = 0; b < cube_->dimension(); ++b) {
    if (!(diff & (1u << b))) continue;
    if (ctx.node & (NodeId{1} << b)) desc |= 1u << b;
    else asc |= 1u << b;
  }
  const std::uint32_t phase_dims = asc != 0 ? asc : desc;
  const VcId phase_vc = asc != 0 ? kAscVc : kDescVc;
  for (int b = 0; b < cube_->dimension(); ++b) {
    if (!(phase_dims & (1u << b))) continue;
    const PortId p = static_cast<PortId>(b);
    if (!fault_free) {
      if (!faults_->link_usable(ctx.node, p)) continue;
      if (!transit_ok(cube_->neighbor(ctx.node, p), ctx.dest)) continue;
    }
    d.candidates.push_back({p, phase_vc, 0});
  }
  // Minimal moves of the other phase, on the misroute channels: the hops-so-
  // far extension channels give extra adaptivity under faults.
  if (!fault_free && d.candidates.empty() && asc != 0 && desc != 0) {
    for (int b = 0; b < cube_->dimension(); ++b) {
      if (!(desc & (1u << b))) continue;
      const PortId p = static_cast<PortId>(b);
      if (!faults_->link_usable(ctx.node, p)) continue;
      if (!transit_ok(cube_->neighbor(ctx.node, p), ctx.dest)) continue;
      d.candidates.push_back({p, kMisrouteVc0, -1});
    }
  }

  if (!fault_free && d.candidates.empty()) {
    // Misroute: flip a non-minimal dimension (no immediate reversal),
    // preferring safe neighbours; alternate the two extension channels by
    // hop parity (the hops-so-far scheme).
    d.mark_misrouted = true;
    const VcId mis_vc = (ctx.path_len % 2 == 0) ? kMisrouteVc0 : kMisrouteVc1;
    for (PortId p = 0; p < cube_->degree(); ++p) {
      if (p == ctx.in_port) continue;
      if (!faults_->link_usable(ctx.node, p)) continue;
      const NodeId m = cube_->neighbor(ctx.node, p);
      const int prio = transit_ok(m, ctx.dest) ? -1 : -2;
      if (states_[static_cast<std::size_t>(m)] == NodeState::StronglyUnsafe &&
          m != ctx.dest)
        continue;
      d.candidates.push_back({p, mis_vc, prio});
    }
  }

  if (!fault_free) add_escape(ctx, d);
  return d;
}

void StrippedRouteC::attach(const Topology& topo, const FaultSet& faults) {
  cube_ = dynamic_cast<const Hypercube*>(&topo);
  FR_REQUIRE_MSG(cube_ != nullptr, "route_c_nft requires a hypercube");
  (void)faults;
}

void StrippedRouteC::minimal_candidates(const Hypercube& cube, NodeId node,
                                        NodeId dest, RouteDecision& d) {
  const auto diff = Hypercube::differing_dims(node, dest);
  std::uint32_t asc = 0, desc = 0;
  for (int b = 0; b < cube.dimension(); ++b) {
    if (!(diff & (1u << b))) continue;
    if (node & (NodeId{1} << b)) desc |= 1u << b;
    else asc |= 1u << b;
  }
  const std::uint32_t dims = asc != 0 ? asc : desc;
  const VcId vc = asc != 0 ? RouteC::kAscVc : RouteC::kDescVc;
  for (int b = 0; b < cube.dimension(); ++b)
    if (dims & (1u << b)) d.candidates.push_back({static_cast<PortId>(b), vc, 0});
}

RouteDecision StrippedRouteC::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(cube_ != nullptr, "route() before attach()");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({cube_->degree(), 0, 0});
    return d;
  }
  minimal_candidates(*cube_, ctx.node, ctx.dest, d);
  FR_ENSURE(!d.candidates.empty());
  return d;
}

}  // namespace flexrouter
