#include "routing/cdg.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <set>
#include <sstream>

namespace flexrouter {

std::string CdgReport::to_string() const {
  std::ostringstream os;
  os << (acyclic ? "acyclic" : "CYCLIC") << ", " << num_channels
     << " channels, " << num_edges << " edges";
  if (!cycle.empty()) {
    os << "; cycle:";
    for (const Channel& c : cycle)
      os << " (" << c.node << "," << c.port << "," << c.vc << ")";
  }
  return os.str();
}

namespace {

/// Iterative DFS cycle detection with witness extraction.
bool find_cycle(const std::vector<std::vector<int>>& adj,
                std::vector<int>& witness) {
  const auto n = adj.size();
  // 0 = white, 1 = on stack, 2 = done
  std::vector<char> color(n, 0);
  std::vector<int> parent(n, -1);
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack;  // node, next-edge index
    stack.emplace_back(static_cast<int>(start), 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, ei] = stack.back();
      if (ei < adj[static_cast<std::size_t>(v)].size()) {
        const int w = adj[static_cast<std::size_t>(v)][ei++];
        if (color[static_cast<std::size_t>(w)] == 0) {
          color[static_cast<std::size_t>(w)] = 1;
          parent[static_cast<std::size_t>(w)] = v;
          stack.emplace_back(w, 0);
        } else if (color[static_cast<std::size_t>(w)] == 1) {
          // Found a back edge v -> w: extract the cycle w ... v.
          witness.clear();
          int x = v;
          witness.push_back(w);
          while (x != w && x != -1) {
            witness.push_back(x);
            x = parent[static_cast<std::size_t>(x)];
          }
          std::reverse(witness.begin() + 1, witness.end());
          return true;
        }
      } else {
        color[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

int ChannelDepGraph::channel_id(const Channel& c) {
  const auto [it, inserted] =
      index_.emplace(c, static_cast<int>(channels_.size()));
  if (inserted) {
    channels_.push_back(c);
    adj_.emplace_back();
  }
  return it->second;
}

int ChannelDepGraph::find_channel(const Channel& c) const {
  const auto it = index_.find(c);
  return it == index_.end() ? -1 : it->second;
}

void ChannelDepGraph::add_edge(int from, int to) {
  FR_REQUIRE(from >= 0 && from < num_channels());
  FR_REQUIRE(to >= 0 && to < num_channels());
  adj_[static_cast<std::size_t>(from)].insert(to);
}

std::int64_t ChannelDepGraph::num_edges() const {
  std::int64_t n = 0;
  for (const auto& s : adj_) n += static_cast<std::int64_t>(s.size());
  return n;
}

CdgReport ChannelDepGraph::check() const {
  CdgReport report;
  report.num_channels = num_channels();
  report.num_edges = num_edges();

  std::vector<std::vector<int>> adj_v(adj_.size());
  for (std::size_t i = 0; i < adj_.size(); ++i)
    adj_v[i].assign(adj_[i].begin(), adj_[i].end());

  std::vector<int> witness;
  if (find_cycle(adj_v, witness)) {
    report.acyclic = false;
    for (const int i : witness)
      report.cycle.push_back(channels_[static_cast<std::size_t>(i)]);
  }
  return report;
}

CdgReport check_cdg(const Topology& topo, const FaultSet& faults,
                    const RoutingAlgorithm& algo, bool escape_only) {
  auto included = [&](VcId vc) {
    return !escape_only || algo.is_escape_vc(vc);
  };

  // Enumerate channels of the checked layer up front so the report counts
  // them even when no dependency touches them.
  ChannelDepGraph graph;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (PortId p = 0; p < topo.degree(); ++p) {
      if (!faults.link_usable(n, p)) continue;
      for (VcId v = 0; v < algo.num_vcs(); ++v) {
        if (!included(v)) continue;
        graph.channel_id(Channel{n, p, v});
      }
    }
  }

  // Dependency edges must only be drawn for header states that can actually
  // occupy a channel — enumerating every destination at every channel
  // manufactures impossible dependencies (e.g. an east-bound DOR packet that
  // suddenly needs to go west) and false cycles. We therefore compute the
  // forward closure of (channel, dest, misrouted) states from all injection
  // points and record edges along it. The full (non-escape-restricted)
  // routing function drives the closure; for the escape-restricted graph,
  // edges are kept only between escape channels, but reachability still
  // flows through adaptive channels (a message may enter the escape layer
  // anywhere).
  struct State {
    int channel;
    NodeId dest;
    bool misrouted;
    /// algo.path_len_class(path_len) — the routing-relevant projection.
    int path_class;
    /// A representative real path_len for this class (not part of the key).
    int path_len_rep;

    bool operator<(const State& o) const {
      return std::tie(channel, dest, misrouted, path_class) <
             std::tie(o.channel, o.dest, o.misrouted, o.path_class);
    }
  };
  // Channel indices over ALL VCs (for reachability), separate from `graph`
  // which holds only the included ones.
  std::map<Channel, int> all_index;
  std::vector<Channel> all_channels;
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    for (PortId p = 0; p < topo.degree(); ++p) {
      if (!faults.link_usable(n, p)) continue;
      for (VcId v = 0; v < algo.num_vcs(); ++v) {
        all_index.emplace(Channel{n, p, v},
                          static_cast<int>(all_channels.size()));
        all_channels.push_back({n, p, v});
      }
    }

  std::set<State> seen;
  std::vector<State> frontier;
  auto expand = [&](const State* from_state, const RouteContext& ctx) {
    const RouteDecision d = algo.route(ctx);
    for (const RouteCandidate& cand : d.candidates) {
      if (cand.port == topo.degree()) continue;  // ejection consumes
      if (!faults.link_usable(ctx.node, cand.port)) continue;
      const auto all_it = all_index.find(Channel{ctx.node, cand.port, cand.vc});
      if (all_it == all_index.end()) continue;
      // Record the dependency edge when both ends are in the checked layer.
      if (from_state != nullptr && included(cand.vc)) {
        const Channel& from_ch =
            all_channels[static_cast<std::size_t>(from_state->channel)];
        if (included(from_ch.vc)) {
          graph.add_edge(graph.channel_id(from_ch),
                         graph.channel_id(Channel{ctx.node, cand.port,
                                                  cand.vc}));
        }
      }
      const State next{all_it->second, ctx.dest,
                       ctx.misrouted || d.mark_misrouted,
                       algo.path_len_class(ctx.path_len + 1),
                       ctx.path_len + 1};
      if (seen.insert(next).second) frontier.push_back(next);
    }
  };

  // Seed: injection at every healthy source toward every healthy dest.
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    if (faults.node_faulty(s)) continue;
    for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
      if (faults.node_faulty(dest) || dest == s) continue;
      RouteContext ctx;
      ctx.node = s;
      ctx.in_port = topo.degree();  // injected locally
      ctx.in_vc = 0;
      ctx.src = s;
      ctx.dest = dest;
      ctx.misrouted = false;
      ctx.path_len = 0;
      expand(nullptr, ctx);
    }
  }
  // Closure.
  while (!frontier.empty()) {
    const State st = frontier.back();
    frontier.pop_back();
    const Channel& c = all_channels[static_cast<std::size_t>(st.channel)];
    const NodeId m = topo.neighbor(c.node, c.port);
    if (m == st.dest) continue;  // will eject
    RouteContext ctx;
    ctx.node = m;
    ctx.in_port = topo.reverse_port(c.node, c.port);
    ctx.in_vc = c.vc;
    ctx.src = c.node;
    ctx.dest = st.dest;
    ctx.misrouted = st.misrouted;
    ctx.path_len = st.path_len_rep;
    expand(&st, ctx);
  }

  return graph.check();
}

}  // namespace flexrouter
