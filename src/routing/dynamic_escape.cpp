#include "routing/dynamic_escape.hpp"

namespace flexrouter {

void DynamicEscape::attach(const Topology& topo, const FaultSet& faults) {
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  FR_REQUIRE_MSG(mesh_ != nullptr && mesh_->dims() == 2,
                 "dynamic-escape requires a 2-D mesh");
  faults_ = &faults;
  reconfigure();
}

int DynamicEscape::reconfigure() {
  epoch_ = faults_->epoch();
  use_reconf_escape_ = false;
  if (reconfigurable_ && !faults_->fault_free()) {
    // The paper's consequence: a single fault forces reconfiguration of the
    // static layer. We rebuild it as up*/down* over the healthy graph.
    use_reconf_escape_ = true;
    return reconf_escape_.rebuild(*faults_);
  }
  return 0;
}

void DynamicEscape::add_static_escape(const RouteContext& ctx,
                                      RouteDecision& d) const {
  if (use_reconf_escape_) {
    UpDownTable::Phase phase = UpDownTable::Phase::Up;
    if (ctx.in_vc == kStaticVc && ctx.in_port >= 0 &&
        ctx.in_port < mesh_->degree()) {
      const NodeId prev = mesh_->neighbor(ctx.node, ctx.in_port);
      phase = reconf_escape_.is_up_move(
                  prev, mesh_->reverse_port(ctx.node, ctx.in_port))
                  ? UpDownTable::Phase::Up
                  : UpDownTable::Phase::Down;
    }
    if (!reconf_escape_.reachable(ctx.node, ctx.dest)) return;
    for (const PortId p : reconf_escape_.next_hops(ctx.node, ctx.dest, phase))
      d.candidates.push_back({p, kStaticVc, -1});
    return;
  }
  // The vulnerable static layer: XY dimension order computed as if the
  // network were fault-free. A faulty link on the XY path silently removes
  // the packet's only guaranteed escape.
  const int dx = mesh_->x_of(ctx.dest) - mesh_->x_of(ctx.node);
  const int dy = mesh_->y_of(ctx.dest) - mesh_->y_of(ctx.node);
  PortId p;
  if (dx != 0) p = Mesh::port_toward(0, dx < 0);
  else p = Mesh::port_toward(1, dy < 0);
  if (faults_->link_usable(ctx.node, p))
    d.candidates.push_back({p, kStaticVc, -1});
}

RouteDecision DynamicEscape::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(mesh_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(), "stale dynamic-escape state");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({mesh_->degree(), 0, 0});
    return d;
  }
  // Escape stickiness (see Nafta::route).
  if (ctx.in_vc == kStaticVc && ctx.in_port >= 0 &&
      ctx.in_port < mesh_->degree()) {
    add_static_escape(ctx, d);
    return d;
  }
  // Dynamic layer: fully adaptive minimal over usable links, any order.
  const int dx = mesh_->x_of(ctx.dest) - mesh_->x_of(ctx.node);
  const int dy = mesh_->y_of(ctx.dest) - mesh_->y_of(ctx.node);
  auto try_add = [&](PortId p) {
    if (faults_->link_usable(ctx.node, p))
      d.candidates.push_back({p, kDynamicVc, 0});
  };
  if (dx > 0) try_add(port_of(Compass::East));
  if (dx < 0) try_add(port_of(Compass::West));
  if (dy > 0) try_add(port_of(Compass::North));
  if (dy < 0) try_add(port_of(Compass::South));
  add_static_escape(ctx, d);
  return d;
}

}  // namespace flexrouter
