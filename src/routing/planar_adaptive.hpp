// Planar-adaptive routing [ChK92] — the second reference router the paper
// names ("the planar adaptive router works with wormhole routing on k-ary
// n cubes ... good references for the optimizations possible by choosing an
// appropriate routing algorithm. Furthermore they are fault-tolerant.").
//
// Reconstruction for k-ary n-dimensional meshes: adaptivity is restricted
// to a sequence of planes A_0 .. A_{n-2}, where plane A_p spans dimensions
// p and p+1. A packet is handled by the plane of its first uncorrected
// dimension (capped at A_{n-2}) and routes fully adaptively *within* that
// plane using the double-network discipline (the NARA argument, with
// dimension p+1 in the "y" role): VC class is chosen by the sign of the
// remaining offset in dimension p+1. Because a physical link of dimension d
// serves plane d-1 in the y role and plane d in the x role, the two roles
// get disjoint VC pairs — x role on VCs 2/3, y role on VCs 0/1 — so the
// per-plane acyclicity proofs compose along the strictly increasing plane
// order: 4 VCs for any n, matching the constant-VC selling point of the
// planar-adaptive design.
//
// Fault tolerance (the `fault_tolerant` flag) follows this repository's
// Duato pattern: minimal in-plane candidates are filtered by link health,
// blocked packets misroute within their plane (marked, one extra
// interpretation), and VC 4 carries an up*/down* escape rebuilt during the
// quiescent diagnosis phase.
#pragma once

#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class PlanarAdaptive final : public RoutingAlgorithm {
 public:
  static constexpr VcId kEscapeVc = 4;

  explicit PlanarAdaptive(bool fault_tolerant = true)
      : fault_tolerant_(fault_tolerant) {}

  std::string name() const override {
    return fault_tolerant_ ? "planar-adaptive-ft" : "planar-adaptive";
  }
  int num_vcs() const override { return fault_tolerant_ ? 5 : 4; }
  bool is_escape_vc(VcId vc) const override {
    return fault_tolerant_ ? vc == kEscapeVc : true;
  }
  int max_path_len() const override { return max_path_len_; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// The plane that handles a packet at `node` for `dest` (first
  /// uncorrected dimension, capped at dims-2); -1 when node == dest.
  int active_plane(NodeId node, NodeId dest) const;

 private:
  void add_escape(const RouteContext& ctx, RouteDecision& d) const;

  const Mesh* mesh_ = nullptr;
  const FaultSet* faults_ = nullptr;
  bool fault_tolerant_;
  UpDownTable escape_;
  std::uint64_t epoch_ = 0;
  int max_path_len_ = 1 << 20;
};

}  // namespace flexrouter
