// The paper's Section 2 strawman: "compute a spanning tree for the network
// graph every time new faults occur; route messages by only using edges of
// the tree". Trivially fault-tolerant and deadlock-free, but it "uses only
// a small fraction of the network links" and almost never takes minimal
// paths — bench/spanning_tree_baseline quantifies exactly that claim.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

class SpanningTreeRouting final : public RoutingAlgorithm {
 public:
  explicit SpanningTreeRouting(int num_vcs = 1) : vcs_(num_vcs) {}

  std::string name() const override { return "spanning-tree"; }
  int num_vcs() const override { return vcs_; }

  void attach(const Topology& topo, const FaultSet& faults) override {
    topo_ = &topo;
    faults_ = &faults;
    reconfigure();
  }

  int reconfigure() override;

  RouteDecision route(const RouteContext& ctx) const override;

  /// Fraction of the topology's healthy links the tree uses (the paper's
  /// wasted-links argument).
  double link_usage_fraction() const;

  const SpanningTree& tree() const { return tree_; }

 private:
  const Topology* topo_ = nullptr;
  const FaultSet* faults_ = nullptr;
  SpanningTree tree_;
  /// next_hop_[node * N + dest] — port toward dest along the tree path.
  std::vector<PortId> next_hop_;
  std::uint64_t epoch_ = 0;
  int vcs_;
};

}  // namespace flexrouter
