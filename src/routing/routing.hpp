// Routing algorithm interface.
//
// A routing algorithm is designed for one topology (paper footnote 1). It
// sees, per decision, only what the router hardware sees: the message header
// fields, the local port/VC state, and the algorithm's own per-node state
// (fault states propagated between neighbours). The simulator additionally
// grants it a reconfiguration hook that runs during the quiescent diagnosis
// phase after a fault (assumption iv), where algorithms recompute propagated
// state; the number of neighbour exchanges they report models the
// propagation cost.
#pragma once

#include <memory>
#include <string>

#include "common/static_vector.hpp"
#include "common/types.hpp"
#include "topology/fault_model.hpp"

namespace flexrouter {

/// Maximum (port, vc) candidates a decision may produce.
inline constexpr std::size_t kMaxCandidates = 48;

/// Trivially default-constructible on purpose: RouteDecision embeds 48 of
/// these in a StaticVector, and per-decision fast paths (the AOT table, the
/// decision cache) construct/copy RouteDecisions every cycle — an NSDMI here
/// would zero the whole tail each time. Always aggregate-initialize with all
/// three fields; the StaticVector never exposes elements past size().
struct RouteCandidate {
  PortId port;
  VcId vc;
  /// Larger = preferred; ties broken by local load (credits) then index.
  int priority;

  friend bool operator==(const RouteCandidate&, const RouteCandidate&) = default;
};

struct RouteDecision {
  StaticVector<RouteCandidate, kMaxCandidates> candidates;
  /// Rule interpretations this decision consumed (the paper's time-overhead
  /// unit; the router stalls the pipeline for steps-1 extra cycles).
  int steps = 1;
  /// Header modification requests (lifelock handling, Section 3): mark the
  /// message as misrouted and/or bump its path-length counter.
  bool mark_misrouted = false;
};

/// Everything the control unit sees when routing a head flit.
struct RouteContext {
  NodeId node = kInvalidNode;
  /// Arrival port (local_port for freshly injected packets) and VC.
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  // Header fields.
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  int path_len = 0;
  bool misrouted = false;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Virtual channels per physical link this algorithm requires.
  virtual int num_vcs() const = 0;

  /// Bind to a network. Called once before use and the algorithm keeps the
  /// references; `reconfigure` is called immediately after.
  virtual void attach(const Topology& topo, const FaultSet& faults) = 0;

  /// Diagnosis-phase hook: recompute propagated fault state. Returns the
  /// number of neighbour state exchanges performed (0 for stateless
  /// algorithms) — reported as reconfiguration cost.
  virtual int reconfigure() { return 0; }

  /// Compute the candidate outputs for a header. Must return at least one
  /// candidate whenever the destination is reachable (condition 3 for the
  /// fault-tolerant algorithms); routers treat an empty decision for a
  /// reachable destination as a protocol failure.
  virtual RouteDecision route(const RouteContext& ctx) const = 0;

  /// True if (port, vc) belongs to the escape layer whose channel dependency
  /// graph must be acyclic (Duato). Algorithms that are deadlock-free
  /// without an escape layer return true for every VC they use.
  virtual bool is_escape_vc(VcId vc) const { (void)vc; return true; }

  /// Misroute budget: once a packet's path_len exceeds this, routers
  /// restrict it to escape candidates only (lifelock avoidance).
  virtual int max_path_len() const { return 1 << 20; }

  /// Equivalence class of `path_len` as far as route() is concerned — the
  /// CDG checker enumerates header states per class, so the class function
  /// must be exactly as fine as the algorithm's real dependence on the
  /// counter. Default: parity (covers VC alternation schemes); algorithms
  /// ignoring path_len may return 0, algorithms using its magnitude (e.g.
  /// negative-hop) return the bounded value itself.
  virtual int path_len_class(int path_len) const { return path_len % 2; }
};

/// Factory over all built-in algorithms: "dor-mesh", "ecube", "nara",
/// "nafta", "route_c", "route_c_nft", "updown", "spanning-tree".
/// The returned algorithm is not yet attached.
std::unique_ptr<RoutingAlgorithm> make_algorithm(const std::string& name);

/// Names accepted by make_algorithm.
std::vector<std::string> algorithm_names();

}  // namespace flexrouter
