#include "routing/dor.hpp"

namespace flexrouter {

void DimensionOrderMesh::attach(const Topology& topo, const FaultSet& faults) {
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  FR_REQUIRE_MSG(mesh_ != nullptr, "dor-mesh requires a Mesh topology");
  (void)faults;
}

RouteDecision DimensionOrderMesh::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(mesh_ != nullptr, "route() before attach()");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({mesh_->degree(), 0, 0});
    return d;
  }
  // Correct the lowest differing dimension first (XY order for 2-D).
  for (int dim = 0; dim < mesh_->dims(); ++dim) {
    const int here = mesh_->coord(ctx.node, dim);
    const int there = mesh_->coord(ctx.dest, dim);
    if (here == there) continue;
    const PortId p = Mesh::port_toward(dim, /*negative=*/there < here);
    for (VcId v = 0; v < vcs_; ++v) d.candidates.push_back({p, v, 0});
    return d;
  }
  FR_UNREACHABLE("equal coordinates but dest != node");
}

void ECubeHypercube::attach(const Topology& topo, const FaultSet& faults) {
  cube_ = dynamic_cast<const Hypercube*>(&topo);
  FR_REQUIRE_MSG(cube_ != nullptr, "ecube requires a Hypercube topology");
  (void)faults;
}

RouteDecision ECubeHypercube::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(cube_ != nullptr, "route() before attach()");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({cube_->degree(), 0, 0});
    return d;
  }
  const auto diff = Hypercube::differing_dims(ctx.node, ctx.dest);
  FR_ASSERT(diff != 0);
  const PortId p = static_cast<PortId>(std::countr_zero(diff));
  for (VcId v = 0; v < vcs_; ++v) d.candidates.push_back({p, v, 0});
  return d;
}

}  // namespace flexrouter
