#include "routing/updown.hpp"

#include <deque>
#include <limits>

namespace flexrouter {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;
}

int UpDownTable::rebuild(const FaultSet& faults) {
  topo_ = &faults.topology();
  faults_ = &faults;
  epoch_ = faults.epoch();
  num_nodes_ = topo_->num_nodes();
  const auto n = static_cast<std::size_t>(num_nodes_);

  const NodeId root = choose_tree_root(faults);
  const SpanningTree tree = bfs_spanning_tree(faults, root);
  order_ = tree.order;

  dist_up_.assign(n * n, kUnreachable);
  dist_down_.assign(n * n, kUnreachable);

  // Backward BFS per destination over the phase automaton. A router in
  // state (node, Up) may take an up move (stay Up) or a down move (enter
  // Down); in state (node, Down) only down moves remain. We therefore walk
  // predecessors: who can reach `dest` next?
  int exchanges = 0;
  for (NodeId dest = 0; dest < num_nodes_; ++dest) {
    if (faults.node_faulty(dest)) continue;
    auto up = [&](NodeId node) -> int& {
      return dist_up_[static_cast<std::size_t>(idx(node, dest))];
    };
    auto down = [&](NodeId node) -> int& {
      return dist_down_[static_cast<std::size_t>(idx(node, dest))];
    };
    // (node, phase): phase 0 = Up, 1 = Down.
    std::deque<std::pair<NodeId, int>> queue;
    up(dest) = 0;
    down(dest) = 0;
    queue.emplace_back(dest, 0);
    queue.emplace_back(dest, 1);
    while (!queue.empty()) {
      const auto [v, phase] = queue.front();
      queue.pop_front();
      const int dv = phase == 0 ? up(v) : down(v);
      // Predecessor u reaches state (v, phase) by the move u -> v.
      for (PortId pv = 0; pv < topo_->degree(); ++pv) {
        if (!faults.link_usable(v, pv)) continue;
        const NodeId u = topo_->neighbor(v, pv);
        const bool move_is_up =
            order_[static_cast<std::size_t>(v)] <
            order_[static_cast<std::size_t>(u)];
        if (move_is_up) {
          // An up move keeps the walker in Up phase, so it only explains
          // state (u, Up) reaching (v, Up).
          if (phase == 0 && up(u) > dv + 1) {
            up(u) = dv + 1;
            queue.emplace_back(u, 0);
          }
        } else {
          // A down move: u may have been in Up (entering Down) or Down.
          // Arriving state at v is Down, so only phase == 1 applies...
          // unless v == dest where both seeds exist; using the Down seed is
          // correct because the walk ends there.
          if (phase == 1) {
            if (down(u) > dv + 1) {
              down(u) = dv + 1;
              queue.emplace_back(u, 1);
            }
            if (up(u) > dv + 1) {
              up(u) = dv + 1;
              queue.emplace_back(u, 0);
            }
          }
        }
      }
    }
  }

  // Distributed construction cost: one BFS wave round per tree level, one
  // exchange per usable directed link per wave.
  int usable_links = 0;
  for (NodeId u = 0; u < num_nodes_; ++u)
    for (PortId p = 0; p < topo_->degree(); ++p)
      if (faults.link_usable(u, p)) ++usable_links;
  int levels = 0;
  for (NodeId u = 0; u < num_nodes_; ++u)
    levels = std::max(levels, tree.level[static_cast<std::size_t>(u)]);
  exchanges = usable_links * std::max(1, levels);
  return exchanges;
}

StaticVector<PortId, 16> UpDownTable::next_hops(NodeId node, NodeId dest,
                                                Phase phase) const {
  FR_REQUIRE(ready());
  FR_REQUIRE(topo_->valid_node(node) && topo_->valid_node(dest));
  StaticVector<PortId, 16> out;
  if (node == dest) return out;
  const int here =
      phase == Phase::Up
          ? dist_up_[static_cast<std::size_t>(idx(node, dest))]
          : dist_down_[static_cast<std::size_t>(idx(node, dest))];
  if (here >= kUnreachable) return out;
  for (PortId p = 0; p < topo_->degree(); ++p) {
    if (!faults_->link_usable(node, p)) continue;
    const NodeId m = topo_->neighbor(node, p);
    const bool up_move = is_up_move(node, p);
    if (phase == Phase::Down && up_move) continue;
    const int next =
        up_move ? dist_up_[static_cast<std::size_t>(idx(m, dest))]
                : dist_down_[static_cast<std::size_t>(idx(m, dest))];
    if (next == here - 1 && !out.full()) out.push_back(p);
  }
  FR_ENSURE_MSG(!out.empty(), "up*/down* table inconsistent: no next hop");
  return out;
}

UpDownTable::Phase UpDownTable::phase_after(NodeId from, PortId port) const {
  return is_up_move(from, port) ? Phase::Up : Phase::Down;
}

bool UpDownTable::is_up_move(NodeId from, PortId port) const {
  FR_REQUIRE(ready());
  const NodeId to = topo_->neighbor(from, port);
  FR_REQUIRE(to != kInvalidNode);
  return order_[static_cast<std::size_t>(to)] <
         order_[static_cast<std::size_t>(from)];
}

bool UpDownTable::reachable(NodeId from, NodeId to) const {
  FR_REQUIRE(ready());
  if (from == to) return faults_->node_ok(from);
  return dist_up_[static_cast<std::size_t>(idx(from, to))] < kUnreachable;
}

int UpDownTable::distance(NodeId from, NodeId to, Phase phase) const {
  FR_REQUIRE(ready());
  const int d = phase == Phase::Up
                    ? dist_up_[static_cast<std::size_t>(idx(from, to))]
                    : dist_down_[static_cast<std::size_t>(idx(from, to))];
  return d >= kUnreachable ? -1 : d;
}

RouteDecision UpDownRouting::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(table_.ready(), "route() before attach()");
  FR_REQUIRE_MSG(table_.built_for_epoch() == faults_->epoch(),
                 "stale up*/down* table: reconfigure() missed an epoch");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({topo_->degree(), 0, 0});
    return d;
  }
  const bool from_network = ctx.in_port >= 0 && ctx.in_port < topo_->degree();
  // Phase tracking: a packet that arrived via a down move may only continue
  // down. Injected packets start in Up phase.
  UpDownTable::Phase phase = UpDownTable::Phase::Up;
  if (from_network) {
    // The packet travelled (neighbor -> ctx.node); it is locked into Down
    // phase iff that move was a down move from the neighbor's perspective.
    const NodeId prev = topo_->neighbor(ctx.node, ctx.in_port);
    phase = table_.is_up_move(prev, topo_->reverse_port(ctx.node, ctx.in_port))
                ? UpDownTable::Phase::Up
                : UpDownTable::Phase::Down;
  }
  for (const PortId p : table_.next_hops(ctx.node, ctx.dest, phase)) {
    for (VcId v = 0; v < vcs_; ++v) d.candidates.push_back({p, v, 0});
  }
  return d;
}

}  // namespace flexrouter
