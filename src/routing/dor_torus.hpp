// Dimension-order routing for tori with dateline virtual channels.
//
// A torus ring has an inherent channel cycle; the classic fix (Dally &
// Seitz, cited by the paper as [DaS87]) splits each ring with a dateline:
// packets start on VC 0 and switch to VC 1 after crossing the wrap-around
// link of the current dimension. Within each dimension the two VC classes
// form spirals with no cycle, and dimension order makes inter-dimension
// dependencies acyclic — which the CDG test verifies mechanically.
//
// Routing is minimal: each dimension corrects toward the shorter way
// around (ties break toward the positive direction).
#pragma once

#include "routing/routing.hpp"
#include "topology/torus.hpp"

namespace flexrouter {

class DimensionOrderTorus final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "dor-torus"; }
  int num_vcs() const override { return 2; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// True if moving from `node` via `port` crosses the wrap-around link of
  /// its dimension (the dateline between coordinate radix-1 and 0).
  bool crosses_dateline(NodeId node, PortId port) const;

 private:
  const Torus* torus_ = nullptr;
};

}  // namespace flexrouter
