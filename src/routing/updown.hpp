// Up*/down* routing on a BFS spanning tree of the healthy subgraph.
//
// Links are oriented by BFS visit order: a move u -> v is "up" when
// order(v) < order(u). Legal paths are zero or more up moves followed by
// zero or more down moves; the down->up turn is forbidden, which makes the
// channel dependency graph acyclic (up chains strictly decrease the order,
// down chains strictly increase it, and no edge leads from a down channel
// to an up channel).
//
// This serves two roles: a standalone deadlock-free fault-tolerant
// algorithm (the spanning-tree flavoured baseline done right — it uses ALL
// healthy links, not just tree edges), and the escape layer of the
// NAFTA/ROUTE_C reconstructions (Duato methodology; see DESIGN.md). It is
// recomputed during the quiescent diagnosis phase that fault assumption iv
// grants.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

class UpDownTable {
 public:
  enum class Phase { Up, Down };

  /// Rebuild tree, orientation and next-hop tables for the current fault
  /// state. Returns the number of node-to-node information exchanges the
  /// distributed construction would need (tree building is a BFS wave:
  /// one exchange per usable directed link, plus one wave round per level).
  int rebuild(const FaultSet& faults);

  bool ready() const { return !order_.empty(); }
  std::uint64_t built_for_epoch() const { return epoch_; }

  /// All ports at `node` that advance toward `dest` along a shortest legal
  /// path from the given phase. Empty iff dest is unreachable.
  StaticVector<PortId, 16> next_hops(NodeId node, NodeId dest,
                                    Phase phase) const;

  /// Phase after traversing `port` from `from`.
  Phase phase_after(NodeId from, PortId port) const;

  /// True if the move from `from` via `port` is an up move.
  bool is_up_move(NodeId from, PortId port) const;

  int order(NodeId n) const { return order_[static_cast<std::size_t>(n)]; }
  bool reachable(NodeId from, NodeId to) const;

  /// Legal-path distance (may exceed the topological distance). -1 when
  /// unreachable.
  int distance(NodeId from, NodeId to, Phase phase) const;

 private:
  int idx(NodeId node, NodeId dest) const {
    return static_cast<int>(node) * num_nodes_ + static_cast<int>(dest);
  }

  const Topology* topo_ = nullptr;
  const FaultSet* faults_ = nullptr;
  std::uint64_t epoch_ = 0;
  int num_nodes_ = 0;
  std::vector<int> order_;
  /// dist_up[node * N + dest]: shortest legal path length starting in Up
  /// phase; dist_down: starting in Down phase (only down moves remain).
  std::vector<int> dist_up_;
  std::vector<int> dist_down_;
};

/// Standalone up*/down* routing algorithm (single virtual channel).
class UpDownRouting final : public RoutingAlgorithm {
 public:
  explicit UpDownRouting(int num_vcs = 1) : vcs_(num_vcs) {}

  std::string name() const override { return "updown"; }
  int num_vcs() const override { return vcs_; }

  void attach(const Topology& topo, const FaultSet& faults) override {
    topo_ = &topo;
    faults_ = &faults;
    reconfigure();
  }

  int reconfigure() override { return table_.rebuild(*faults_); }

  RouteDecision route(const RouteContext& ctx) const override;

  const UpDownTable& table() const { return table_; }

 private:
  const Topology* topo_ = nullptr;
  const FaultSet* faults_ = nullptr;
  UpDownTable table_;
  int vcs_;
};

}  // namespace flexrouter
