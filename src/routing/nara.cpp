#include "routing/nara.hpp"

namespace flexrouter {

void Nara::attach(const Topology& topo, const FaultSet& faults) {
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  FR_REQUIRE_MSG(mesh_ != nullptr && mesh_->dims() == 2,
                 "NARA requires a 2-D mesh");
  (void)faults;
}

void Nara::minimal_candidates(const Mesh& mesh, NodeId node, NodeId dest,
                              VcId arrival_vc, RouteDecision& d) {
  const int dx = mesh.x_of(dest) - mesh.x_of(node);
  const int dy = mesh.y_of(dest) - mesh.y_of(node);
  // Virtual network selection: VC 1 while going north, VC 0 while going
  // south. x-only traffic stays on its arrival network; only injected
  // packets may pick either (see the header comment for why).
  auto add = [&d](PortId p, VcId v) { d.candidates.push_back({p, v, 0}); };
  if (dy > 0) {
    add(port_of(Compass::North), 1);
    if (dx > 0) add(port_of(Compass::East), 1);
    if (dx < 0) add(port_of(Compass::West), 1);
  } else if (dy < 0) {
    add(port_of(Compass::South), 0);
    if (dx > 0) add(port_of(Compass::East), 0);
    if (dx < 0) add(port_of(Compass::West), 0);
  } else {
    const PortId p = dx > 0 ? port_of(Compass::East) : port_of(Compass::West);
    if (dx != 0) {
      if (arrival_vc == 0 || arrival_vc == 1) {
        add(p, arrival_vc);
      } else {
        add(p, 0);
        add(p, 1);
      }
    }
  }
}

RouteDecision Nara::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(mesh_ != nullptr, "route() before attach()");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({mesh_->degree(), 0, 0});
    return d;
  }
  const bool from_network =
      ctx.in_port >= 0 && ctx.in_port < mesh_->degree();
  minimal_candidates(*mesh_, ctx.node, ctx.dest,
                     from_network ? ctx.in_vc : kInvalidVc, d);
  FR_ENSURE(!d.candidates.empty());
  return d;
}

}  // namespace flexrouter
