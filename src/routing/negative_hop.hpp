// The negative-hop scheme [BoC96], which the paper singles out in its
// deadlock-avoidance discussion: "using the negative hop scheme ... for
// which the number of virtual channels depends on the network diameter no
// changes to the deadlock avoidance are necessary at all" when faults
// occur — the fault-tolerance cost is paid entirely in virtual channels.
//
// Nodes of a bipartite topology (meshes and hypercubes are bipartite) are
// 2-coloured; a hop from colour 1 to colour 0 is "negative". A packet that
// has taken k negative hops travels on VC k. Within one VC class only
// positive (0 -> 1) hops occur and every negative hop strictly increases
// the class, so the channel dependency graph is acyclic for ANY path the
// routing takes — minimal, adaptive, or misrouted around faults — with no
// per-fault changes whatsoever. The price: class count = max negative hops
// = ceil(max path length / 2) + 1, i.e. VCs grow with the (faulted)
// diameter.
//
// The negative-hop count is derivable from header fields alone
// (colour(src) and path_len), so no extra header state is needed.
//
// Routing here is distance-vector: candidates are all usable ports that
// strictly reduce the BFS distance (computed on the faulted graph during
// the diagnosis phase), which guarantees delivery in exactly dist hops and
// bounds the VC demand by ceil(faulted_diameter / 2) + 1.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

class NegativeHop final : public RoutingAlgorithm {
 public:
  /// `num_vcs` must cover ceil(faulted_diameter / 2) + 1; reconfigure()
  /// enforces this (the scheme's structural VC demand). The helper
  /// vcs_needed_for() sizes it from a topology.
  explicit NegativeHop(int num_vcs) : vcs_(num_vcs) {}

  static int vcs_needed_for(const Topology& topo, int fault_margin = 4) {
    return (topo.diameter() + fault_margin) / 2 + 1;
  }

  std::string name() const override { return "negative-hop"; }
  int num_vcs() const override { return vcs_; }
  /// The VC class is a function of the full hop count (bounded by the
  /// faulted diameter, since routing is strictly distance-decreasing).
  int path_len_class(int path_len) const override { return path_len; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// 2-colouring of the topology (0/1); negative hop = 1 -> 0.
  int color(NodeId n) const { return colors_[static_cast<std::size_t>(n)]; }

  /// Negative hops completed by a packet that now sits at `node` after
  /// `path_len` hops. Because colours alternate along any path, this is a
  /// function of the CURRENT node's colour and the hop counter alone — no
  /// source information needed, exactly what the router hardware can see.
  int negative_hops(NodeId node, int path_len) const;

  /// Faulted diameter of the last reconfiguration (tests/benches).
  int faulted_diameter() const { return faulted_diameter_; }

 private:
  int dist(NodeId from, NodeId to) const {
    return dist_[static_cast<std::size_t>(from) *
                     static_cast<std::size_t>(num_nodes_) +
                 static_cast<std::size_t>(to)];
  }

  const Topology* topo_ = nullptr;
  const FaultSet* faults_ = nullptr;
  int vcs_;
  NodeId num_nodes_ = 0;
  std::vector<int> colors_;
  std::vector<int> dist_;  // faulted all-pairs distances
  int faulted_diameter_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace flexrouter
