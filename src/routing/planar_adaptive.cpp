#include "routing/planar_adaptive.hpp"

namespace flexrouter {

void PlanarAdaptive::attach(const Topology& topo, const FaultSet& faults) {
  mesh_ = dynamic_cast<const Mesh*>(&topo);
  FR_REQUIRE_MSG(mesh_ != nullptr && mesh_->dims() >= 2,
                 "planar-adaptive requires a mesh with >= 2 dimensions");
  faults_ = &faults;
  int per = 0;
  for (int d = 0; d < mesh_->dims(); ++d) per += mesh_->radix(d);
  max_path_len_ = 2 * per + 8;
  reconfigure();
}

int PlanarAdaptive::reconfigure() {
  epoch_ = faults_->epoch();
  if (!fault_tolerant_) return 0;
  return escape_.rebuild(*faults_);
}

int PlanarAdaptive::active_plane(NodeId node, NodeId dest) const {
  for (int d = 0; d < mesh_->dims(); ++d)
    if (mesh_->coord(node, d) != mesh_->coord(dest, d))
      return std::min(d, mesh_->dims() - 2);
  return -1;
}

void PlanarAdaptive::add_escape(const RouteContext& ctx,
                                RouteDecision& d) const {
  UpDownTable::Phase phase = UpDownTable::Phase::Up;
  if (ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < mesh_->degree()) {
    const NodeId prev = mesh_->neighbor(ctx.node, ctx.in_port);
    phase = escape_.is_up_move(prev, mesh_->reverse_port(ctx.node, ctx.in_port))
                ? UpDownTable::Phase::Up
                : UpDownTable::Phase::Down;
  }
  if (!escape_.reachable(ctx.node, ctx.dest)) return;
  for (const PortId p : escape_.next_hops(ctx.node, ctx.dest, phase))
    d.candidates.push_back({p, kEscapeVc, -3});
}

RouteDecision PlanarAdaptive::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(mesh_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(), "stale planar-adaptive state");
  RouteDecision d;
  const bool fault_free = faults_->fault_free();
  if (fault_tolerant_) d.steps = fault_free ? 1 : 2;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({mesh_->degree(), 0, 0});
    return d;
  }
  if (fault_tolerant_ && ctx.in_vc == kEscapeVc && ctx.in_port >= 0 &&
      ctx.in_port < mesh_->degree()) {
    add_escape(ctx, d);  // escape stickiness, see Nafta::route
    return d;
  }

  const int plane = active_plane(ctx.node, ctx.dest);
  FR_ASSERT(plane >= 0);
  const int dx_dim = plane;       // "x" role of this plane
  const int dy_dim = plane + 1;   // "y" role
  const int dx = mesh_->coord(ctx.dest, dx_dim) - mesh_->coord(ctx.node, dx_dim);
  const int dy = mesh_->coord(ctx.dest, dy_dim) - mesh_->coord(ctx.node, dy_dim);

  auto usable = [&](PortId p) {
    return !fault_tolerant_ || fault_free || faults_->link_usable(ctx.node, p);
  };
  auto add = [&](PortId p, VcId v) {
    if (usable(p)) d.candidates.push_back({p, v, 0});
  };

  // Double-network discipline within the plane: network 1 serves dy >= 0
  // traffic (y moves on VC 1, x moves on VC 3), network 0 serves dy <= 0
  // (VC 0 / VC 2). dy == 0 packets stay on the network their arrival VC
  // encodes — switching networks mid-plane would bridge the two otherwise
  // acyclic halves (the same cycle the NARA CDG test caught). Packets
  // injected here or entering from an earlier plane may pick either.
  const PortId x_pos = Mesh::port_toward(dx_dim, false);
  const PortId x_neg = Mesh::port_toward(dx_dim, true);
  const PortId y_pos = Mesh::port_toward(dy_dim, false);
  const PortId y_neg = Mesh::port_toward(dy_dim, true);
  if (dy > 0) {
    add(y_pos, 1);
    if (dx > 0) add(x_pos, 3);
    if (dx < 0) add(x_neg, 3);
  } else if (dy < 0) {
    add(y_neg, 0);
    if (dx > 0) add(x_pos, 2);
    if (dx < 0) add(x_neg, 2);
  } else {
    const PortId p = dx > 0 ? x_pos : x_neg;
    const bool in_plane_arrival =
        ctx.in_port >= 0 && ctx.in_port < mesh_->degree() &&
        (Mesh::dim_of_port(ctx.in_port) == dx_dim ||
         Mesh::dim_of_port(ctx.in_port) == dy_dim) &&
        ctx.in_vc >= 0 && ctx.in_vc <= 3;
    if (in_plane_arrival) {
      add(p, ctx.in_vc <= 1 ? ctx.in_vc + 2 : ctx.in_vc);
    } else {
      add(p, 2);
      add(p, 3);
    }
  }

  if (fault_tolerant_ && !fault_free) {
    if (d.candidates.empty()) {
      // In-plane misroute: any usable direction within the active plane,
      // marked, one more interpretation (the NAFTA pattern).
      d.steps = 3;
      d.mark_misrouted = true;
      const VcId y_vc = dy > 0 ? 1 : 0;
      const VcId x_vc = dy > 0 ? 3 : 2;
      for (const PortId p : {x_pos, x_neg, y_pos, y_neg}) {
        if (p == ctx.in_port) continue;
        if (!faults_->link_usable(ctx.node, p)) continue;
        const bool is_y = Mesh::dim_of_port(p) == dy_dim;
        d.candidates.push_back({p, is_y ? y_vc : x_vc, -1});
      }
    }
    add_escape(ctx, d);
  }
  return d;
}

}  // namespace flexrouter
