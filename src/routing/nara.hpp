// NARA — the non-fault-tolerant, fully adaptive minimal routing algorithm
// for 2-D meshes that NAFTA extends [CuA95].
//
// Reconstruction (see DESIGN.md): two virtual channels form two virtual
// networks selected by the sign of the remaining y-offset ("south-last" /
// "north-last"): packets still needing to travel north use VC 1, packets
// needing south use VC 0. Packets with dy == 0 move only in x; freshly
// injected ones may pick either network, but once in the network they stay
// on their arrival VC — letting them switch networks would let a north
// packet that finished its y-correction continue on the south network,
// closing N/E/S/W dependency cycles across the two networks (the CDG test
// found exactly that cycle). With the stay-on-your-network rule each
// network's dependencies are y-monotone and x-consistent, so the channel
// dependency graph is acyclic — full minimal adaptivity (condition 1,
// every minimal *path* remains selectable) with two VCs.
#pragma once

#include "routing/routing.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class Nara final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "nara"; }
  int num_vcs() const override { return 2; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// The minimal adaptive candidate set shared with NAFTA's fault-free fast
  /// path. `arrival_vc` is the VC the packet holds (kInvalidVc for freshly
  /// injected packets, which may choose either network when dy == 0).
  static void minimal_candidates(const Mesh& mesh, NodeId node, NodeId dest,
                                 VcId arrival_vc, RouteDecision& d);

 private:
  const Mesh* mesh_ = nullptr;
};

}  // namespace flexrouter
