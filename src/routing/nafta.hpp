// NAFTA — fault-tolerant adaptive routing for 2-D meshes [CuA95],
// reconstructed from the paper's description (see DESIGN.md §2):
//
//  * Fault-free behaviour identical to NARA: fully adaptive minimal routing
//    on two virtual networks (condition 1), one rule interpretation per
//    decision.
//  * Per-node fault states with geometric meaning, propagated in a wave
//    from the fault site: directional dead-end flags ("dead-end-east" = all
//    columns to the east contain at least one fault) and a deactivation
//    flag that completes concave fault regions to convex ones — healthy
//    nodes inside pockets are excluded from transit, the paper's noted
//    violation of condition 3 for the adaptive layer.
//  * With faults, decisions take 2 interpretations (fault state consulted)
//    or 3 when the message must be misrouted; misrouted messages are marked
//    in the header and carry a path-length counter (lifelock avoidance).
//  * Deadlock freedom under faults via the Duato construction: VC 2 is an
//    up*/down* escape channel rebuilt in the diagnosis phase; it also
//    restores delivery (condition 3) to deactivated-but-healthy nodes.
#pragma once

#include <array>
#include <vector>

#include "routing/nara.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class Nafta final : public RoutingAlgorithm {
 public:
  static constexpr VcId kEscapeVc = 2;

  /// `fault_aware_adaptivity` implements Section 3's adaptivity guidance
  /// ("a faulty link just has to appear as maximally loaded"): dead-end
  /// regions are deprioritised and the escape layer ranks below adaptive
  /// outputs. Disabling it models a fault-blind adaptivity measure — the
  /// ablation bench/adaptivity_ablation quantifies the damage.
  explicit Nafta(bool fault_aware_adaptivity = true)
      : fault_aware_(fault_aware_adaptivity) {}

  std::string name() const override {
    return fault_aware_ ? "nafta" : "nafta-blind-adaptivity";
  }
  int num_vcs() const override { return 3; }
  bool is_escape_vc(VcId vc) const override { return vc == kEscapeVc; }
  int max_path_len() const override { return max_path_len_; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  // --- propagated state, exposed for tests and the Figure-2 bench ---------
  bool deactivated(NodeId n) const {
    return deactivated_[static_cast<std::size_t>(n)] != 0;
  }
  /// dead_end(n, c): from n, every row/column strictly in direction c
  /// contains at least one fault.
  bool dead_end(NodeId n, Compass c) const {
    return dead_end_[static_cast<std::size_t>(port_of(c))]
                    [static_cast<std::size_t>(n)] != 0;
  }
  int num_deactivated() const;
  const UpDownTable& escape_table() const { return escape_; }
  /// Rounds the deactivation (convexification) fixed point needed in the
  /// last reconfiguration.
  int last_settle_rounds() const { return settle_rounds_; }

 private:
  bool transit_ok(NodeId neighbor, NodeId dest) const;
  void add_escape(const RouteContext& ctx, RouteDecision& d) const;
  int compute_dead_ends();
  int compute_deactivation();

  const Mesh* mesh_ = nullptr;
  const FaultSet* faults_ = nullptr;
  bool fault_aware_ = true;
  UpDownTable escape_;
  std::vector<char> deactivated_;
  std::array<std::vector<char>, 4> dead_end_;  // indexed by compass port
  std::uint64_t epoch_ = 0;
  int max_path_len_ = 1 << 20;
  int settle_rounds_ = 0;
};

}  // namespace flexrouter
