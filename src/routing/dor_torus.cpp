#include "routing/dor_torus.hpp"

namespace flexrouter {

void DimensionOrderTorus::attach(const Topology& topo,
                                 const FaultSet& faults) {
  torus_ = dynamic_cast<const Torus*>(&topo);
  FR_REQUIRE_MSG(torus_ != nullptr, "dor-torus requires a Torus topology");
  (void)faults;
}

bool DimensionOrderTorus::crosses_dateline(NodeId node, PortId port) const {
  const int dim = port / 2;
  const int r = torus_->radix(dim);
  const int c = torus_->coord(node, dim);
  if (port % 2 == 0) return c == r - 1;  // +dir wrap: radix-1 -> 0
  return c == 0;                         // -dir wrap: 0 -> radix-1
}

RouteDecision DimensionOrderTorus::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(torus_ != nullptr, "route() before attach()");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({torus_->degree(), 0, 0});
    return d;
  }
  for (int dim = 0; dim < torus_->dims(); ++dim) {
    const int r = torus_->radix(dim);
    const int here = torus_->coord(ctx.node, dim);
    const int there = torus_->coord(ctx.dest, dim);
    if (here == there) continue;
    // Shorter way around; ties toward positive.
    const int fwd = (there - here + r) % r;
    const bool negative = fwd > r - fwd;
    const PortId p = static_cast<PortId>(2 * dim + (negative ? 1 : 0));

    // Dateline discipline: VC 0 until the wrap link of this dimension has
    // been crossed, VC 1 afterwards. "Already wrapped" is carried by the
    // arrival VC: while correcting one dimension the packet arrives on that
    // dimension's ports, so in_vc == 1 on a same-dimension arrival means
    // the wrap lies behind us. Entering a new dimension resets to VC 0.
    const bool same_dim_arrival = ctx.in_port >= 0 &&
                                  ctx.in_port < torus_->degree() &&
                                  ctx.in_port / 2 == dim;
    const bool wrapped = same_dim_arrival && ctx.in_vc == 1;
    const VcId vc = (wrapped || crosses_dateline(ctx.node, p)) ? 1 : 0;
    d.candidates.push_back({p, vc, 0});
    return d;
  }
  FR_UNREACHABLE("equal coordinates but dest != node");
}

}  // namespace flexrouter
