// Channel dependency graph construction and acyclicity checking — the
// mechanical verification behind every deadlock-freedom claim in this
// repository (Duato's methodology, cited by the paper as [Dua97]).
//
// A channel is a directed (node, port, vc) triple over a usable link. An
// edge c1 -> c2 exists when some message that arrived over c1 can request c2
// at the downstream router. `check_escape_cdg` restricts both sides to the
// algorithm's escape layer (sufficient for deadlock freedom when the
// algorithm keeps messages on the escape layer once entered);
// `check_full_cdg` checks the entire routing function (for algorithms that
// claim deadlock freedom without an escape layer, e.g. NARA or DOR).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "routing/routing.hpp"

namespace flexrouter {

struct Channel {
  NodeId node = kInvalidNode;  // upstream endpoint
  PortId port = kInvalidPort;
  VcId vc = kInvalidVc;

  friend bool operator==(const Channel&, const Channel&) = default;
  friend auto operator<=>(const Channel&, const Channel&) = default;
};

struct CdgReport {
  bool acyclic = true;
  int num_channels = 0;
  std::int64_t num_edges = 0;
  /// One witness cycle when !acyclic (channels in order).
  std::vector<Channel> cycle;

  std::string to_string() const;
};

/// The mechanical core every deadlock-freedom argument reduces to: a set of
/// interned channels, dependency edges between them, and an acyclicity check
/// that extracts one witness cycle on failure. `check_cdg` builds it from a
/// live RoutingAlgorithm; the static analyzer (ruleanalysis) builds it from
/// rule conclusions alone. Edges are deduplicated; isolated channels still
/// count towards num_channels in the report.
class ChannelDepGraph {
 public:
  /// Intern `c`, returning its dense id (stable across calls).
  int channel_id(const Channel& c);
  /// The id of `c` if interned, -1 otherwise.
  int find_channel(const Channel& c) const;
  void add_edge(int from, int to);
  void add_edge(const Channel& from, const Channel& to) {
    add_edge(channel_id(from), channel_id(to));
  }

  int num_channels() const { return static_cast<int>(channels_.size()); }
  std::int64_t num_edges() const;
  const Channel& channel(int id) const {
    return channels_[static_cast<std::size_t>(id)];
  }

  /// Cycle detection with witness extraction.
  CdgReport check() const;

 private:
  std::map<Channel, int> index_;
  std::vector<Channel> channels_;
  std::vector<std::set<int>> adj_;
};

/// Build the dependency graph restricted to channels for which
/// `include_vc(vc)` holds and check it for cycles. Headers are enumerated
/// over all healthy destinations, both misroute-mark values and arrival
/// states.
CdgReport check_cdg(const Topology& topo, const FaultSet& faults,
                    const RoutingAlgorithm& algo, bool escape_only);

inline CdgReport check_escape_cdg(const Topology& topo, const FaultSet& faults,
                                  const RoutingAlgorithm& algo) {
  return check_cdg(topo, faults, algo, /*escape_only=*/true);
}

inline CdgReport check_full_cdg(const Topology& topo, const FaultSet& faults,
                                const RoutingAlgorithm& algo) {
  return check_cdg(topo, faults, algo, /*escape_only=*/false);
}

}  // namespace flexrouter
