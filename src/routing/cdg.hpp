// Channel dependency graph construction and acyclicity checking — the
// mechanical verification behind every deadlock-freedom claim in this
// repository (Duato's methodology, cited by the paper as [Dua97]).
//
// A channel is a directed (node, port, vc) triple over a usable link. An
// edge c1 -> c2 exists when some message that arrived over c1 can request c2
// at the downstream router. `check_escape_cdg` restricts both sides to the
// algorithm's escape layer (sufficient for deadlock freedom when the
// algorithm keeps messages on the escape layer once entered);
// `check_full_cdg` checks the entire routing function (for algorithms that
// claim deadlock freedom without an escape layer, e.g. NARA or DOR).
#pragma once

#include <string>
#include <vector>

#include "routing/routing.hpp"

namespace flexrouter {

struct Channel {
  NodeId node = kInvalidNode;  // upstream endpoint
  PortId port = kInvalidPort;
  VcId vc = kInvalidVc;

  friend bool operator==(const Channel&, const Channel&) = default;
  friend auto operator<=>(const Channel&, const Channel&) = default;
};

struct CdgReport {
  bool acyclic = true;
  int num_channels = 0;
  std::int64_t num_edges = 0;
  /// One witness cycle when !acyclic (channels in order).
  std::vector<Channel> cycle;

  std::string to_string() const;
};

/// Build the dependency graph restricted to channels for which
/// `include_vc(vc)` holds and check it for cycles. Headers are enumerated
/// over all healthy destinations, both misroute-mark values and arrival
/// states.
CdgReport check_cdg(const Topology& topo, const FaultSet& faults,
                    const RoutingAlgorithm& algo, bool escape_only);

inline CdgReport check_escape_cdg(const Topology& topo, const FaultSet& faults,
                                  const RoutingAlgorithm& algo) {
  return check_cdg(topo, faults, algo, /*escape_only=*/true);
}

inline CdgReport check_full_cdg(const Topology& topo, const FaultSet& faults,
                                const RoutingAlgorithm& algo) {
  return check_cdg(topo, faults, algo, /*escape_only=*/false);
}

}  // namespace flexrouter
