#include "routing/negative_hop.hpp"

#include <deque>

namespace flexrouter {

void NegativeHop::attach(const Topology& topo, const FaultSet& faults) {
  topo_ = &topo;
  faults_ = &faults;
  num_nodes_ = topo.num_nodes();

  // 2-colouring by BFS parity; verify bipartiteness (meshes and hypercubes
  // qualify, tori only with even radices).
  colors_.assign(static_cast<std::size_t>(num_nodes_), -1);
  for (NodeId start = 0; start < num_nodes_; ++start) {
    if (colors_[static_cast<std::size_t>(start)] != -1) continue;
    colors_[static_cast<std::size_t>(start)] = 0;
    std::deque<NodeId> queue{start};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (PortId p = 0; p < topo.degree(); ++p) {
        const NodeId v = topo.neighbor(u, p);
        if (v == kInvalidNode) continue;
        const int want = 1 - colors_[static_cast<std::size_t>(u)];
        int& cv = colors_[static_cast<std::size_t>(v)];
        if (cv == -1) {
          cv = want;
          queue.push_back(v);
        } else {
          FR_REQUIRE_MSG(cv == want,
                         "negative-hop scheme needs a bipartite topology");
        }
      }
    }
  }
  reconfigure();
}

int NegativeHop::reconfigure() {
  // Distance-vector update on the faulted graph — this is ordinary routing
  // information maintenance; crucially, the deadlock-avoidance structure
  // (colours and VC classes) is untouched by faults, the scheme's selling
  // point in the paper.
  dist_.assign(static_cast<std::size_t>(num_nodes_) *
                   static_cast<std::size_t>(num_nodes_),
               -1);
  faulted_diameter_ = 0;
  int exchanges = 0;
  for (NodeId dest = 0; dest < num_nodes_; ++dest) {
    if (faults_->node_faulty(dest)) continue;
    const auto d = bfs_distances(*faults_, dest);
    for (NodeId n = 0; n < num_nodes_; ++n) {
      dist_[static_cast<std::size_t>(n) * static_cast<std::size_t>(num_nodes_) +
            static_cast<std::size_t>(dest)] = d[static_cast<std::size_t>(n)];
      faulted_diameter_ = std::max(faulted_diameter_, d[static_cast<std::size_t>(n)]);
      if (d[static_cast<std::size_t>(n)] > 0)
        exchanges += faults_->usable_degree(n);
    }
  }
  FR_REQUIRE_MSG(
      (faulted_diameter_ + 1) / 2 + 1 <= vcs_,
      "negative-hop VC budget too small for the faulted diameter — "
      "construct with NegativeHop::vcs_needed_for(topo, margin)");
  epoch_ = faults_->epoch();
  return exchanges;
}

int NegativeHop::negative_hops(NodeId node, int path_len) const {
  // Colours alternate along any path, so the number of 1 -> 0 transitions
  // among the first k hops collapses to a function of k and the colour of
  // the node reached: k even -> k/2 regardless; k odd -> (k+1)/2 when the
  // walk now sits on colour 0 (the odd hop was the negative one), else
  // (k-1)/2.
  if (path_len % 2 == 0) return path_len / 2;
  const int c = colors_[static_cast<std::size_t>(node)];
  return c == 0 ? (path_len + 1) / 2 : (path_len - 1) / 2;
}

RouteDecision NegativeHop::route(const RouteContext& ctx) const {
  FR_REQUIRE_MSG(topo_ != nullptr, "route() before attach()");
  FR_REQUIRE_MSG(epoch_ == faults_->epoch(),
                 "stale negative-hop tables: reconfigure() missed an epoch");
  RouteDecision d;
  if (ctx.dest == ctx.node) {
    d.candidates.push_back({topo_->degree(), 0, 0});
    return d;
  }
  const int here = dist(ctx.node, ctx.dest);
  if (here < 0) return d;  // disconnected (assumption iii violation upstream)

  // VC class for the next hop = negative hops completed so far. Within a
  // class only positive (0 -> 1) hops occur; every negative hop moves the
  // packet to the next class, so inter-class dependencies strictly
  // increase and the CDG is acyclic for any path.
  const VcId vc =
      static_cast<VcId>(negative_hops(ctx.node, ctx.path_len));
  FR_ASSERT_MSG(vc < vcs_, "negative-hop class exceeded the VC budget");

  for (PortId p = 0; p < topo_->degree(); ++p) {
    if (!faults_->link_usable(ctx.node, p)) continue;
    const NodeId m = topo_->neighbor(ctx.node, p);
    if (dist(m, ctx.dest) == here - 1) d.candidates.push_back({p, vc, 0});
  }
  FR_ENSURE_MSG(!d.candidates.empty(),
                "distance table inconsistent: no descending neighbour");
  return d;
}

}  // namespace flexrouter
