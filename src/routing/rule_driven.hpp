// Rule-driven routing: executes a routing algorithm written in the rule
// language on the simulated router — the full loop the paper proposes
// (rule compiler -> rule tables -> rule interpreter in the control unit).
//
// Conventions for runnable routing programs:
//  * The decision rule base is named `route` (configurable). Firing it must
//    either RETURN one output (an integer port, or a symbol whose rank in
//    the RETURNS domain is the port index — declare the enum in Compass
//    order {east, west, north, south, local}), or emit one or more
//    `!cand(port, vc, priority)` events.
//  * Inputs are served from a fixed catalog, by name:
//      xpos, ypos, xdes, ydes      mesh coordinates (2-D meshes only)
//      node, dest, src             node ids
//      in_port, in_vc              arrival port / VC (degree = injection)
//      injected                    1 iff the packet was injected here
//      path_len, misrouted         header state
//      link_ok(dirs)               1 iff the local link is usable
//      dest_reachable              1 iff dest reachable from here
//    and, when an escape VC is configured (fault-tolerant programs):
//      escape_ok                   1 iff the escape layer reaches dest
//      escape_port                 the deterministic up*/down* next hop
//      on_escape                   1 iff the packet arrived on the escape VC
//  * Each router node owns an independent register file (one EventManager
//    per node), so stateful programs keep per-node state like real rule
//    bases. All mutable per-decision state (active context, candidate
//    sink, event scratch, cache counters) lives in a per-node DecisionSlot,
//    so concurrent route() calls on *different* nodes — the sharded
//    network step — never share mutable state. Decisions on one node are
//    never concurrent (a node belongs to exactly one shard).
//
// Execution tiers:
//  * ExecMode::Vm (default) compiles the program to bytecode once (shared
//    by all nodes) and serves inputs/candidate events through id-resolved
//    fast paths. On top sits a per-node decision cache keyed by
//    (dest, in_port, in_vc) — the software analogue of the paper's
//    RBR-kernel table lookup. It is enabled only when static analysis
//    proves every reachable rule base is stateless and reads only inputs
//    determined by the key, the topology and the fault set; cached entries
//    are invalidated by FaultSet::epoch() and by rule-register writes
//    (RuleEnv::version()).
//  * ExecMode::Aot additionally pre-resolves, at attach/reconfigure time,
//    every premise point (node, dest, in_port, in_vc) through the VM into
//    one flat AotTable (ruleengine/aot.hpp) — route() becomes a strided
//    load plus a candidate copy, bit-identical to the VM by construction
//    (the table stores what the VM answered). The same soundness analysis
//    gates it; unsound or over-budget programs silently keep the VM+cache
//    tiers, out-of-range premise points fall back per decision, and a
//    machine() poke drops the whole table until the next fill (the
//    conservative analogue of the cache's env-version tags).
//
// Hot swap: prepare_swap() parses, compiles and AOT-fills a complete
// pending execution image for a new program while the active image keeps
// serving traffic; commit_swap() installs it atomically between decisions.
// Everything program-scoped lives in the Image; the escape layer, which is
// a property of the host (topology + fault set), survives the swap.
//
// The decision cost (steps) is the number of rule interpretations the
// decision consumed — exactly the unit Section 5 reports. Cache and AOT
// hits report the steps of the decision they replay, keeping the paper's
// metric intact.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/assert.hpp"
#include "ruleengine/aot.hpp"
#include "ruleengine/event_manager.hpp"
#include "routing/routing.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class RuleDrivenRouting final : public RoutingAlgorithm {
 public:
  /// Premise spaces above this entry count keep the VM + cache tiers (the
  /// paper's exponential-blow-up discussion applies to the decision table
  /// exactly as to the ARON kernel).
  static constexpr std::uint64_t kAotMaxEntries = std::uint64_t{1} << 22;

  /// `escape_vc` >= 0 equips the rule program with a hardware escape layer
  /// (a deterministic up*/down* table rebuilt each diagnosis phase, exposed
  /// through the escape_* inputs) — the Duato construction that makes
  /// rule-programmed fault tolerance deadlock-free.
  RuleDrivenRouting(std::string program_source, int num_vcs,
                    rules::ExecMode mode = rules::ExecMode::Vm,
                    std::string route_base = "route", VcId escape_vc = -1);
  ~RuleDrivenRouting() override;

  std::string name() const override;
  int num_vcs() const override { return vcs_; }
  bool is_escape_vc(VcId vc) const override {
    return escape_vc_ < 0 || vc == escape_vc_;
  }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// The execution image only exists once attached.
  const rules::Program& program() const {
    FR_ASSERT_MSG(img_ != nullptr, "program() before attach()");
    return *img_->program;
  }

  /// Per-node machine access (tests poke state / post events).
  rules::EventManager& machine(NodeId n) const;

  /// Decision-cache introspection (benches and tests). The setter only
  /// narrows: caching stays off when static analysis ruled it unsound.
  bool decision_cache_enabled() const {
    return img_ != nullptr && img_->cache_enabled && cache_wanted_;
  }
  void set_decision_cache_enabled(bool on) { cache_wanted_ = on; }
  std::int64_t decision_cache_hits() const;
  std::int64_t decision_cache_misses() const;
  void clear_decision_cache() const;

  /// True when decisions are being served from an AOT table (false also
  /// after a machine() poke dropped the table pending the next fill).
  bool aot_active() const { return aot_view_.entries != nullptr; }
  /// Table statistics of the active image (empty stats when no table —
  /// fallback_fraction() reports 1.0 then). For rulelint and benches.
  rules::AotTable::Stats aot_stats() const;

  // --- hot swap -------------------------------------------------------------
  /// Build a complete execution image (parse, validate, compile and — in
  /// Aot mode — fill the decision table) for a new program while the active
  /// image keeps serving traffic. Throws on any error (parse, validation,
  /// unresolvable input), leaving the active image untouched. Requires
  /// attach().
  void prepare_swap(std::string program_source);
  bool swap_prepared() const { return pending_ != nullptr; }
  /// Whether static analysis proved the *prepared* program stateless — the
  /// soundness condition for an immediate (zero-downtime) commit.
  bool swap_target_stateless() const {
    FR_REQUIRE_MSG(pending_ != nullptr, "no swap prepared");
    return pending_->stateless;
  }
  /// Install the prepared image. The caller must guarantee no route() call
  /// is in flight (the simulator commits between cycles or at quiescence).
  void commit_swap();
  void abort_swap() { pending_.reset(); }

 private:
  /// Catalog slot of one declared input, resolved once at attach().
  enum class InCode : std::uint8_t {
    Node, Dest, Src, InPort, InVc, Injected, PathLen, Misrouted,
    LinkOk, DestReachable, OnEscape, EscapeOk, EscapePort,
    XPos, YPos, XDes, YDes,
    Unknown,  // not served by this host configuration: error on read
  };

  struct NodeCache {
    std::uint64_t epoch_tag = ~std::uint64_t{0};
    std::uint64_t env_tag = ~std::uint64_t{0};
    std::unordered_map<std::uint64_t, RouteDecision> entries;
  };

  /// All mutable state one in-flight decision needs, owned per node: the
  /// VM callback context. route() on node n touches only slots_[n] (plus
  /// the node's machine and cache), which is what makes concurrent
  /// decisions on distinct nodes race-free. The image-scoped fields the
  /// raw callbacks need (input-code array, cand event id) are flattened in
  /// by value / data pointer so a slot never dereferences its Image —
  /// slots stay valid across image moves.
  struct DecisionSlot {
    const RuleDrivenRouting* owner = nullptr;
    const InCode* input_codes = nullptr;      // this image's resolved inputs
    std::int32_t cand_event_id = -1;          // this image's interned "cand"
    const RouteContext* ctx = nullptr;
    RouteDecision* decision = nullptr;
    std::vector<rules::EmittedEvent> scratch;
    rules::EventManager::HostHandlerFast cand_handler;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  };

  /// Everything scoped to one rule program: the unit of hot swap. The
  /// active image serves traffic; prepare_swap() builds a pending one on
  /// the side and commit_swap() exchanges the unique_ptrs. Host-scoped
  /// state — topology, fault set, the escape layer, the cache switch —
  /// lives outside and survives the swap.
  struct Image {
    std::string source;
    std::unique_ptr<rules::Program> program;
    std::shared_ptr<const rules::BytecodeProgram> bytecode;
    int route_rb = -1;                // index of the decision rule base
    std::int32_t cand_event_id = -1;  // interned "cand" (VM events)
    std::vector<InCode> input_codes;  // parallel to program->inputs
    /// Analysis verdict: no reachable rule writes registers. Gates the
    /// immediate (zero-downtime) swap policy.
    bool stateless = false;
    /// Stateless and every input read is premise-keyed — the soundness
    /// condition shared by the decision cache and the AOT table.
    bool tabulable = false;
    bool cache_enabled = false;
    std::vector<std::unique_ptr<rules::EventManager>> machines;
    std::vector<DecisionSlot> slots;    // one per node
    std::vector<NodeCache> caches;      // one per node
    // AOT tier (ExecMode::Aot + tabulable + within budget only).
    rules::AotTable aot;
    std::uint64_t aot_epoch = ~std::uint64_t{0};
  };

  /// Snapshot of the active image's AOT table, flattened into the routing
  /// object: a table hit must not chase img_ -> Image -> vector storage
  /// (two extra dependent cache loads per decision). entries == nullptr
  /// means "no table serving" — absent, over budget, or dropped after a
  /// machine() poke. Refreshed at every point img_ or its table changes.
  struct AotView {
    const rules::AotEntry* entries = nullptr;
    const rules::AotCand* arena = nullptr;
    std::int32_t nodes = 0;
    std::int32_t dests = 0;
    std::int32_t ports = 0;
    std::int32_t vcs = 0;
    std::uint64_t node_stride = 0;
    std::uint64_t dest_stride = 0;
    std::uint64_t epoch = ~std::uint64_t{0};
  };

  rules::Value input_value(const RouteContext& ctx, const std::string& name,
                           const std::vector<rules::Value>& idx) const;
  rules::Value input_by_code(InCode code, const RouteContext& ctx,
                             const rules::Value* idx, std::size_t nidx) const;
  /// Raw VM callbacks for the decision path (ctx = DecisionSlot*).
  static rules::Value input_raw(void* ctx, std::int32_t input_id,
                                const rules::Value* idx, std::size_t nidx);
  static void event_sink(void* ctx, std::int32_t name_id,
                         std::int32_t target_rb, const rules::Value* args,
                         std::size_t nargs);
  void add_candidate(RouteDecision& d, PortId port, VcId vc, int prio) const;
  std::unique_ptr<Image> build_image(std::string program_source) const;
  /// (Re)fill the image's AOT table for the current fault epoch; no-op
  /// when the image is not AOT-eligible or the table is already fresh.
  void fill_aot(Image& im) const;
  /// Re-point aot_view_ at the active image's table (null when it has
  /// none). Call after anything that changes img_ or its table.
  void refresh_aot_view() const;
  /// Decision-cache + VM/interpreter tiers, out of line so route()'s AOT
  /// hit keeps NRVO (see the definition). Fills `d` in place.
  void route_fallback(const RouteContext& ctx, RouteDecision& d) const;
  RouteDecision compute_route(Image& im, const RouteContext& ctx) const;

  std::string source_;  // pre-attach program; updated on commit_swap()
  std::string route_base_;
  rules::ExecMode mode_;
  int vcs_;
  VcId escape_vc_;
  UpDownTable escape_;
  const Topology* topo_ = nullptr;
  const Mesh* mesh_ = nullptr;  // non-null on 2-D meshes
  const FaultSet* faults_ = nullptr;
  bool cache_wanted_ = true;  // host switch (benches measure cold paths)
  std::unique_ptr<Image> img_;      // active; null before attach()
  std::unique_ptr<Image> pending_;  // prepared swap target, if any
  /// Mutable: machine() (a const accessor) drops the view when it hands
  /// out mutable rule state. Only mutated in single-threaded phases
  /// (attach / reconfigure / commit / test pokes), never during stepping.
  mutable AotView aot_view_;
};

// Defined in the header so the network step and the benches inline the
// AOT hit: out of line, the loop-invariant view and epoch loads are
// reloaded on every decision behind an opaque call.
inline RouteDecision RuleDrivenRouting::route(const RouteContext& ctx) const {
  // Every return below names this one object — the only shape GCC applies
  // NRVO to. Without it each AOT hit pays a ~600-byte RouteDecision copy
  // into the caller's slot, which costs more than the table lookup itself.
  RouteDecision d;
  const AotView& av = aot_view_;
  if (av.entries != nullptr) {
    // A non-null view implies attach() ran, and table freshness implies
    // escape-layer freshness (fill_aot asserts the escape table was
    // rebuilt for the same epoch before filling) — so this one check
    // subsumes the attach/escape preconditions route_fallback() enforces.
    FR_REQUIRE_MSG(av.epoch == faults_->epoch(),
                   "stale AOT table: reconfigure() missed an epoch");
    const std::int32_t pa = ctx.in_port + 1;  // port axis: -1 collapses to 0
    const std::int32_t va = ctx.in_vc + 1;    // vc axis: likewise
    // The range test doubles as the bounds proof for the raw-indexed
    // lookup; anything outside the table is a VM premise point.
    if (static_cast<std::uint32_t>(ctx.node) <
            static_cast<std::uint32_t>(av.nodes) &&
        static_cast<std::uint32_t>(ctx.dest) <
            static_cast<std::uint32_t>(av.dests) &&
        static_cast<std::uint32_t>(pa) < static_cast<std::uint32_t>(av.ports) &&
        static_cast<std::uint32_t>(va) < static_cast<std::uint32_t>(av.vcs)) {
      const std::uint64_t flat =
          static_cast<std::uint64_t>(ctx.node) * av.node_stride +
          static_cast<std::uint64_t>(ctx.dest) * av.dest_stride +
          static_cast<std::uint64_t>(pa) * static_cast<std::uint64_t>(av.vcs) +
          static_cast<std::uint64_t>(va);
      const rules::AotEntry e = av.entries[flat];
      // steps == 0: premise point the fill left to the VM (or marked
      // unreachable — the VM reproduces the throw).
      if (e.steps != 0) {
        if (e.count & rules::AotEntry::kArenaFlag) {
          // Oversized / unpackable candidate set: overflow arena.
          const std::uint32_t n =
              e.count & (rules::AotEntry::kArenaFlag - 1u);
          const rules::AotCand* c = av.arena + e.first;
          RouteCandidate* dst = d.candidates.resize_for_overwrite(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            dst[i].port = c[i].port;
            dst[i].vc = c[i].vc;
            dst[i].priority = c[i].priority;
          }
        } else {
          // Unpack every inline slot unconditionally — branch-free; slots
          // past `count` land in the container's unspecified tail.
          RouteCandidate* dst = d.candidates.resize_for_overwrite(e.count);
          for (std::uint32_t i = 0; i < rules::AotEntry::kInlineCands; ++i) {
            dst[i].port = e.inl[i].port;
            dst[i].vc = e.inl[i].vc;
            dst[i].priority = e.inl[i].priority;
          }
        }
        d.steps = e.steps;
        return d;
      }
    }
  }
  route_fallback(ctx, d);
  return d;
}

}  // namespace flexrouter
