// Rule-driven routing: executes a routing algorithm written in the rule
// language on the simulated router — the full loop the paper proposes
// (rule compiler -> rule tables -> rule interpreter in the control unit).
//
// Conventions for runnable routing programs:
//  * The decision rule base is named `route` (configurable). Firing it must
//    either RETURN one output (an integer port, or a symbol whose rank in
//    the RETURNS domain is the port index — declare the enum in Compass
//    order {east, west, north, south, local}), or emit one or more
//    `!cand(port, vc, priority)` events.
//  * Inputs are served from a fixed catalog, by name:
//      xpos, ypos, xdes, ydes      mesh coordinates (2-D meshes only)
//      node, dest, src             node ids
//      in_port, in_vc              arrival port / VC (degree = injection)
//      injected                    1 iff the packet was injected here
//      path_len, misrouted         header state
//      link_ok(dirs)               1 iff the local link is usable
//      dest_reachable              1 iff dest reachable from here
//    and, when an escape VC is configured (fault-tolerant programs):
//      escape_ok                   1 iff the escape layer reaches dest
//      escape_port                 the deterministic up*/down* next hop
//      on_escape                   1 iff the packet arrived on the escape VC
//  * Each router node owns an independent register file (one EventManager
//    per node), so stateful programs keep per-node state like real rule
//    bases. All mutable per-decision state (active context, candidate
//    sink, event scratch, cache counters) lives in a per-node DecisionSlot,
//    so concurrent route() calls on *different* nodes — the sharded
//    network step — never share mutable state. Decisions on one node are
//    never concurrent (a node belongs to exactly one shard).
//
// Execution: the default ExecMode::Vm compiles the program to bytecode once
// (shared by all nodes) and serves inputs/candidate events through
// id-resolved fast paths. On top sits a per-node decision cache keyed by
// (dest, in_port, in_vc) — the software analogue of the paper's RBR-kernel
// table lookup. It is enabled only when static analysis proves every
// reachable rule base is stateless and reads only inputs determined by the
// key, the topology and the fault set; cached entries are invalidated by
// FaultSet::epoch() and by rule-register writes (RuleEnv::version()).
//
// The decision cost (steps) is the number of rule interpretations the
// decision consumed — exactly the unit Section 5 reports. Cache hits report
// the steps of the decision they replay, keeping the paper's metric intact.
#pragma once

#include <memory>
#include <unordered_map>

#include "ruleengine/event_manager.hpp"
#include "routing/routing.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class RuleDrivenRouting final : public RoutingAlgorithm {
 public:
  /// `escape_vc` >= 0 equips the rule program with a hardware escape layer
  /// (a deterministic up*/down* table rebuilt each diagnosis phase, exposed
  /// through the escape_* inputs) — the Duato construction that makes
  /// rule-programmed fault tolerance deadlock-free.
  RuleDrivenRouting(std::string program_source, int num_vcs,
                    rules::ExecMode mode = rules::ExecMode::Vm,
                    std::string route_base = "route", VcId escape_vc = -1);

  std::string name() const override;
  int num_vcs() const override { return vcs_; }
  bool is_escape_vc(VcId vc) const override {
    return escape_vc_ < 0 || vc == escape_vc_;
  }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  const rules::Program& program() const { return *program_; }

  /// Per-node machine access (tests poke state / post events).
  rules::EventManager& machine(NodeId n) const;

  /// Decision-cache introspection (benches and tests). The setter only
  /// narrows: caching stays off when static analysis ruled it unsound.
  bool decision_cache_enabled() const {
    return cache_enabled_ && cache_wanted_;
  }
  void set_decision_cache_enabled(bool on) { cache_wanted_ = on; }
  std::int64_t decision_cache_hits() const {
    std::int64_t sum = 0;
    for (const DecisionSlot& s : slots_) sum += s.cache_hits;
    return sum;
  }
  std::int64_t decision_cache_misses() const {
    std::int64_t sum = 0;
    for (const DecisionSlot& s : slots_) sum += s.cache_misses;
    return sum;
  }
  void clear_decision_cache() const;

 private:
  /// Catalog slot of one declared input, resolved once at attach().
  enum class InCode : std::uint8_t {
    Node, Dest, Src, InPort, InVc, Injected, PathLen, Misrouted,
    LinkOk, DestReachable, OnEscape, EscapeOk, EscapePort,
    XPos, YPos, XDes, YDes,
    Unknown,  // not served by this host configuration: error on read
  };

  struct NodeCache {
    std::uint64_t epoch_tag = ~std::uint64_t{0};
    std::uint64_t env_tag = ~std::uint64_t{0};
    std::unordered_map<std::uint64_t, RouteDecision> entries;
  };

  /// All mutable state one in-flight decision needs, owned per node: the
  /// VM callback context. route() on node n touches only slots_[n] (plus
  /// the node's machine and cache), which is what makes concurrent
  /// decisions on distinct nodes race-free.
  struct DecisionSlot {
    const RuleDrivenRouting* owner = nullptr;
    const RouteContext* ctx = nullptr;
    RouteDecision* decision = nullptr;
    std::vector<rules::EmittedEvent> scratch;
    rules::EventManager::HostHandlerFast cand_handler;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  };

  rules::Value input_value(const RouteContext& ctx, const std::string& name,
                           const std::vector<rules::Value>& idx) const;
  rules::Value input_by_code(InCode code, const RouteContext& ctx,
                             const rules::Value* idx, std::size_t nidx) const;
  /// Raw VM callbacks for the decision path (ctx = DecisionSlot*).
  static rules::Value input_raw(void* ctx, std::int32_t input_id,
                                const rules::Value* idx, std::size_t nidx);
  static void event_sink(void* ctx, std::int32_t name_id,
                         std::int32_t target_rb, const rules::Value* args,
                         std::size_t nargs);
  void add_candidate(RouteDecision& d, PortId port, VcId vc, int prio) const;
  RouteDecision compute_route(const RouteContext& ctx) const;

  std::string source_;
  std::string route_base_;
  rules::ExecMode mode_;
  int vcs_;
  VcId escape_vc_;
  UpDownTable escape_;
  std::unique_ptr<rules::Program> program_;
  const Topology* topo_ = nullptr;
  const Mesh* mesh_ = nullptr;  // non-null on 2-D meshes
  const FaultSet* faults_ = nullptr;
  mutable std::vector<std::unique_ptr<rules::EventManager>> machines_;

  // Resolved once at attach().
  std::shared_ptr<const rules::BytecodeProgram> bytecode_;
  int route_rb_ = -1;                 // index of the decision rule base
  std::int32_t cand_event_id_ = -1;   // interned "cand" (VM events)
  std::vector<InCode> input_codes_;   // parallel to program_->inputs

  bool cache_enabled_ = false;  // static analysis verdict
  bool cache_wanted_ = true;    // host switch (benches measure cold paths)
  mutable std::vector<NodeCache> caches_;  // one per node
  mutable std::vector<DecisionSlot> slots_;  // one per node
};

}  // namespace flexrouter
