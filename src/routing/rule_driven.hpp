// Rule-driven routing: executes a routing algorithm written in the rule
// language on the simulated router — the full loop the paper proposes
// (rule compiler -> rule tables -> rule interpreter in the control unit).
//
// Conventions for runnable routing programs:
//  * The decision rule base is named `route` (configurable). Firing it must
//    either RETURN one output (an integer port, or a symbol whose rank in
//    the RETURNS domain is the port index — declare the enum in Compass
//    order {east, west, north, south, local}), or emit one or more
//    `!cand(port, vc, priority)` events.
//  * Inputs are served from a fixed catalog, by name:
//      xpos, ypos, xdes, ydes      mesh coordinates (2-D meshes only)
//      node, dest, src             node ids
//      in_port, in_vc              arrival port / VC (degree = injection)
//      injected                    1 iff the packet was injected here
//      path_len, misrouted         header state
//      link_ok(dirs)               1 iff the local link is usable
//      dest_reachable              1 iff dest reachable from here
//    and, when an escape VC is configured (fault-tolerant programs):
//      escape_ok                   1 iff the escape layer reaches dest
//      escape_port                 the deterministic up*/down* next hop
//      on_escape                   1 iff the packet arrived on the escape VC
//  * Each router node owns an independent register file (one EventManager
//    per node), so stateful programs keep per-node state like real rule
//    bases. All mutable per-decision state (active context, candidate
//    sink, event scratch, cache counters) lives in a per-node DecisionSlot,
//    so concurrent route() calls on *different* nodes — the sharded
//    network step — never share mutable state. Decisions on one node are
//    never concurrent (a node belongs to exactly one shard).
//
// Execution tiers:
//  * ExecMode::Vm (default) compiles the program to bytecode once (shared
//    by all nodes) and serves inputs/candidate events through id-resolved
//    fast paths. On top sits a per-node decision cache keyed by
//    (dest, in_port, in_vc) — the software analogue of the paper's
//    RBR-kernel table lookup. It is enabled only when static analysis
//    proves every reachable rule base is stateless and reads only inputs
//    determined by the key, the topology and the fault set; cached entries
//    are invalidated by FaultSet::epoch() and by rule-register writes
//    (RuleEnv::version()).
//  * ExecMode::Aot additionally pre-resolves premise points
//    (node, dest, in_port, in_vc) through the VM into decision tables —
//    route() becomes a strided load plus a candidate copy, bit-identical
//    to the VM by construction (the tables store what the VM answered).
//    Tier selection walks a ladder at fill time:
//      1. direct   — a flat LUT over the full premise space, when it fits
//                    the entry budget (the PR 7 layout, unchanged).
//      2. compressed — when a dest-axis classifier applies (see
//                    ruleengine/aot_classify.hpp: xor-fold for e-cube
//                    programs, offset-sign for DOR/NARA-style mesh
//                    programs), the dest axis collapses to O(degree)
//                    classes and the table fits fabrics the direct layout
//                    cannot. Validated point-by-point against the VM during
//                    fill (exhaustive when the uncompressed space fits the
//                    budget, sampled witnesses beyond); any mismatch
//                    demotes to the lazy tier.
//      3. lazy     — fixed-size per-node sub-tables (2-way set-associative,
//                    tagged by premise key) filled on first touch from the
//                    miss path, so steady-state traffic converges to table
//                    latency without ever paying a full 400M-point fill.
//                    Node-scoped, hence race-free under sharded stepping.
//      4. VM       — non-tabulable programs only; the chosen tier and the
//                    reason are recorded on the image and surfaced through
//                    aot_tier_info() (rulelint --emit-table, flexsim).
//    The same soundness analysis gates every table tier; out-of-range
//    premise points fall back per decision, and a machine() poke drops the
//    tables until the next fill (the conservative analogue of the cache's
//    env-version tags).
//
// Hot swap: prepare_swap() parses, compiles and AOT-fills a complete
// pending execution image for a new program while the active image keeps
// serving traffic; commit_swap() installs it atomically between decisions.
// Everything program-scoped lives in the Image; the escape layer, which is
// a property of the host (topology + fault set), survives the swap.
//
// The decision cost (steps) is the number of rule interpretations the
// decision consumed — exactly the unit Section 5 reports. Cache and AOT
// hits report the steps of the decision they replay, keeping the paper's
// metric intact.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/assert.hpp"
#include "ruleengine/aot.hpp"
#include "ruleengine/aot_classify.hpp"
#include "ruleengine/event_manager.hpp"
#include "routing/routing.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class RuleDrivenRouting final : public RoutingAlgorithm {
 public:
  /// Default AOT entry budget: the direct LUT, a compressed table, or the
  /// sum of the lazy per-node sub-tables must fit this many entries (the
  /// paper's exponential-blow-up discussion applies to the decision table
  /// exactly as to the ARON kernel). Tests and benches narrow it with
  /// set_aot_budget() to force the compressed / lazy tiers at small sizes.
  static constexpr std::uint64_t kAotMaxEntries = std::uint64_t{1} << 22;
  /// Floor on the lazy tier's per-node sub-table capacity (entries; the
  /// budget divided across nodes never shrinks a sub-table below this).
  static constexpr std::uint32_t kLazyMinPerNode = 64;

  /// Which execution tier serves decisions after the last fill. Vm means no
  /// table at all — the reason is recorded in aot_tier_info().reason.
  enum class AotTier : std::uint8_t { Vm, Direct, Compressed, Lazy };
  static const char* tier_name(AotTier t) {
    switch (t) {
      case AotTier::Vm: return "vm";
      case AotTier::Direct: return "direct";
      case AotTier::Compressed: return "compressed";
      case AotTier::Lazy: return "lazy";
    }
    return "?";
  }

  /// Tier-selection report for rulelint --emit-table, flexsim and tests.
  struct AotTierInfo {
    AotTier tier = AotTier::Vm;
    rules::DestClassifier classifier = rules::DestClassifier::None;
    /// Why this tier: the classifier's applicability verdict, the budget
    /// arithmetic, or — for the VM tier — what kept the tables off.
    std::string reason;
    std::uint64_t full_entries = 0;   // uncompressed premise-space size
    std::uint64_t table_entries = 0;  // entries actually allocated
    /// full_entries / table_entries (1.0 for the direct tier).
    double compression_ratio = 1.0;
    // Lazy-tier counters (zero elsewhere).
    std::uint64_t lazy_capacity_per_node = 0;
    std::uint64_t lazy_nodes_allocated = 0;
    std::int64_t lazy_hits = 0;
    std::int64_t lazy_misses = 0;
    std::int64_t lazy_evictions = 0;
    std::int64_t lazy_uncacheable = 0;
  };

  /// `escape_vc` >= 0 equips the rule program with a hardware escape layer
  /// (a deterministic up*/down* table rebuilt each diagnosis phase, exposed
  /// through the escape_* inputs) — the Duato construction that makes
  /// rule-programmed fault tolerance deadlock-free.
  RuleDrivenRouting(std::string program_source, int num_vcs,
                    rules::ExecMode mode = rules::ExecMode::Vm,
                    std::string route_base = "route", VcId escape_vc = -1);
  ~RuleDrivenRouting() override;

  std::string name() const override;
  int num_vcs() const override { return vcs_; }
  bool is_escape_vc(VcId vc) const override {
    return escape_vc_ < 0 || vc == escape_vc_;
  }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  /// The execution image only exists once attached.
  const rules::Program& program() const {
    FR_ASSERT_MSG(img_ != nullptr, "program() before attach()");
    return *img_->program;
  }

  /// Per-node machine access (tests poke state / post events).
  rules::EventManager& machine(NodeId n) const;

  /// Decision-cache introspection (benches and tests). The setter only
  /// narrows: caching stays off when static analysis ruled it unsound.
  bool decision_cache_enabled() const {
    return img_ != nullptr && img_->cache_enabled && cache_wanted_;
  }
  void set_decision_cache_enabled(bool on) { cache_wanted_ = on; }
  std::int64_t decision_cache_hits() const;
  std::int64_t decision_cache_misses() const;
  void clear_decision_cache() const;

  /// True when decisions are being served from an AOT tier (direct,
  /// compressed or lazy tables; false also after a machine() poke dropped
  /// the tables pending the next fill).
  bool aot_active() const {
    return aot_view_.entries != nullptr || aot_view_.lazy != nullptr;
  }
  /// Table statistics of the active image (empty stats when no table —
  /// fallback_fraction() reports 1.0 then). For rulelint and benches.
  rules::AotTable::Stats aot_stats() const;
  /// Tier report of the active image: which tier serves decisions, the
  /// classifier verdict, compression ratio and lazy counters.
  AotTierInfo aot_tier_info() const;

  /// Narrow (or widen) the AOT entry budget; effective at the next fill
  /// (attach / reconfigure / prepare_swap). Tests force the compressed and
  /// lazy tiers at small fabric sizes this way.
  void set_aot_budget(std::uint64_t entries) { aot_budget_ = entries; }
  std::uint64_t aot_budget() const { return aot_budget_; }
  /// Disable dest-class compression (benches compare the lazy tier against
  /// the compressed one on the same program). Effective at the next fill.
  void set_aot_compression_enabled(bool on) { compress_wanted_ = on; }
  bool aot_compression_enabled() const { return compress_wanted_; }

  // --- hot swap -------------------------------------------------------------
  /// Build a complete execution image (parse, validate, compile and — in
  /// Aot mode — fill the decision table) for a new program while the active
  /// image keeps serving traffic. Throws on any error (parse, validation,
  /// unresolvable input), leaving the active image untouched. Requires
  /// attach().
  void prepare_swap(std::string program_source);
  bool swap_prepared() const { return pending_ != nullptr; }
  /// Whether static analysis proved the *prepared* program stateless — the
  /// soundness condition for an immediate (zero-downtime) commit.
  bool swap_target_stateless() const {
    FR_REQUIRE_MSG(pending_ != nullptr, "no swap prepared");
    return pending_->stateless;
  }
  /// Install the prepared image. The caller must guarantee no route() call
  /// is in flight (the simulator commits between cycles or at quiescence).
  void commit_swap();
  void abort_swap() { pending_.reset(); }

  // --- rolling swap commit --------------------------------------------------
  /// Per-shard rolling commit: instead of gating the whole network until
  /// quiescence, the simulator drains one ShardPlan shard at a time and
  /// flips its nodes to the prepared program as each goes quiet. Between
  /// begin and finish, route() serves every decision through the fallback
  /// path (the AOT view is dropped — tables are image-global and cannot
  /// represent a mixed network), picking the pending image for nodes
  /// already committed and the active one for the rest.
  void begin_rolling_commit();
  /// Flip one node to the prepared program (its decisions now come from the
  /// pending image). The caller must guarantee the node is quiet — no
  /// buffered flits, nothing in its injection queue.
  void commit_swap_node(NodeId n);
  /// All nodes flipped: install the pending image wholesale (commit_swap)
  /// and restore the table tiers.
  void finish_rolling_commit();
  bool rolling_commit_active() const { return rolling_; }

 private:
  /// Catalog slot of one declared input, resolved once at attach().
  enum class InCode : std::uint8_t {
    Node, Dest, Src, InPort, InVc, Injected, PathLen, Misrouted,
    LinkOk, DestReachable, OnEscape, EscapeOk, EscapePort,
    XPos, YPos, XDes, YDes,
    Unknown,  // not served by this host configuration: error on read
  };

  struct NodeCache {
    std::uint64_t epoch_tag = ~std::uint64_t{0};
    std::uint64_t env_tag = ~std::uint64_t{0};
    std::unordered_map<std::uint64_t, RouteDecision> entries;
  };

  /// All mutable state one in-flight decision needs, owned per node: the
  /// VM callback context. route() on node n touches only slots_[n] (plus
  /// the node's machine and cache), which is what makes concurrent
  /// decisions on distinct nodes race-free. The image-scoped fields the
  /// raw callbacks need (input-code array, cand event id) are flattened in
  /// by value / data pointer so a slot never dereferences its Image —
  /// slots stay valid across image moves.
  struct DecisionSlot {
    const RuleDrivenRouting* owner = nullptr;
    const InCode* input_codes = nullptr;      // this image's resolved inputs
    std::int32_t cand_event_id = -1;          // this image's interned "cand"
    const RouteContext* ctx = nullptr;
    RouteDecision* decision = nullptr;
    std::vector<rules::EmittedEvent> scratch;
    rules::EventManager::HostHandlerFast cand_handler;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  };

  /// One lazy sub-table slot: a tagged AOT entry. tag == 0 is empty; a
  /// stored key k is tagged k + 1 so key 0 is representable.
  struct LazySlot {
    std::uint64_t tag = 0;
    rules::AotEntry e{};
  };

  /// One node's lazy sub-table: 2-way set-associative over the node's
  /// (dest, in_port, in_vc) premise key, filled from the miss path. All
  /// mutation is node-scoped (a node belongs to exactly one shard), so the
  /// lazy tier is race-free under sharded stepping for the same reason
  /// DecisionSlot is. Counters live here, not on LazyState, for that
  /// same reason.
  struct LazyNode {
    std::vector<LazySlot> slots;  // sets * 2
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    /// Decisions the entry encoding cannot hold (oversized candidate set,
    /// steps out of uint16 range, mark_misrouted) — recomputed every time.
    std::int64_t uncacheable = 0;
  };

  /// Lazy tier state: per-node sub-tables allocated on first touch, so an
  /// idle node costs nothing. The nodes vector itself is pre-sized at
  /// setup — first-touch allocation swaps a unique_ptr in place and never
  /// resizes, keeping concurrent touches on distinct nodes race-free.
  struct LazyState {
    std::uint32_t sets = 0;          // per node; power of two
    std::uint64_t capacity = 0;      // sets * 2, for reporting
    std::int32_t ports = 0;          // full premise axes (key layout)
    std::int32_t vcs = 0;
    std::int32_t id_bound = 0;       // nodes == dests == num_nodes
    std::uint64_t epoch = ~std::uint64_t{0};
    std::vector<std::unique_ptr<LazyNode>> nodes;
  };

  /// Everything scoped to one rule program: the unit of hot swap. The
  /// active image serves traffic; prepare_swap() builds a pending one on
  /// the side and commit_swap() exchanges the unique_ptrs. Host-scoped
  /// state — topology, fault set, the escape layer, the cache switch —
  /// lives outside and survives the swap.
  struct Image {
    std::string source;
    std::unique_ptr<rules::Program> program;
    std::shared_ptr<const rules::BytecodeProgram> bytecode;
    int route_rb = -1;                // index of the decision rule base
    std::int32_t cand_event_id = -1;  // interned "cand" (VM events)
    std::vector<InCode> input_codes;  // parallel to program->inputs
    /// Analysis verdict: no reachable rule writes registers. Gates the
    /// immediate (zero-downtime) swap policy.
    bool stateless = false;
    /// Stateless and every input read is premise-keyed — the soundness
    /// condition shared by the decision cache and the AOT table.
    bool tabulable = false;
    bool cache_enabled = false;
    std::vector<std::unique_ptr<rules::EventManager>> machines;
    std::vector<DecisionSlot> slots;    // one per node
    std::vector<NodeCache> caches;      // one per node
    // AOT tier ladder (ExecMode::Aot + tabulable only). `aot` holds the
    // direct or compressed table; `lazy` the per-node sub-tables. The
    // chosen tier and why are recorded for aot_tier_info().
    rules::AotTable aot;
    std::uint64_t aot_epoch = ~std::uint64_t{0};
    AotTier tier = AotTier::Vm;
    std::string tier_reason;
    rules::DestClassAnalysis classify;              // syntactic verdict
    rules::DestClassifier classifier_used = rules::DestClassifier::None;
    std::uint64_t full_entries = 0;  // uncompressed premise-space size
    std::unique_ptr<LazyState> lazy;
    bool lazy_active = false;  // false after a machine() poke
  };

  /// Snapshot of the active image's AOT table, flattened into the routing
  /// object: a table hit must not chase img_ -> Image -> vector storage
  /// (two extra dependent cache loads per decision). entries == nullptr
  /// means "no table serving" — absent, over budget, or dropped after a
  /// machine() poke. Refreshed at every point img_ or its table changes.
  struct AotView {
    const rules::AotEntry* entries = nullptr;
    const rules::AotCand* arena = nullptr;
    std::int32_t nodes = 0;
    std::int32_t dests = 0;
    std::int32_t ports = 0;
    std::int32_t vcs = 0;
    std::uint64_t node_stride = 0;
    std::uint64_t dest_stride = 0;
    std::uint64_t epoch = ~std::uint64_t{0};
    /// Compressed tier: how route() derives the dest-axis index. For
    /// XorFold nodes==1 (node axis collapsed; node_stride==0) and
    /// dests==the class count; id_bound carries the real node-id bound the
    /// dims no longer encode. xs/ys point at the host's coordinate arrays
    /// (OffsetSign2D sign computation without a Mesh call).
    rules::DestClassifier classifier = rules::DestClassifier::None;
    std::int32_t id_bound = 0;
    const std::int16_t* xs = nullptr;
    const std::int16_t* ys = nullptr;
    /// Lazy tier (mutually exclusive with entries != nullptr). Mutable
    /// through the view: the sub-tables are node-scoped (see LazyNode).
    LazyState* lazy = nullptr;
  };

  rules::Value input_value(const RouteContext& ctx, const std::string& name,
                           const std::vector<rules::Value>& idx) const;
  rules::Value input_by_code(InCode code, const RouteContext& ctx,
                             const rules::Value* idx, std::size_t nidx) const;
  /// Raw VM callbacks for the decision path (ctx = DecisionSlot*).
  static rules::Value input_raw(void* ctx, std::int32_t input_id,
                                const rules::Value* idx, std::size_t nidx);
  static void event_sink(void* ctx, std::int32_t name_id,
                         std::int32_t target_rb, const rules::Value* args,
                         std::size_t nargs);
  void add_candidate(RouteDecision& d, PortId port, VcId vc, int prio) const;
  std::unique_ptr<Image> build_image(std::string program_source) const;
  /// (Re)fill the image's AOT tier for the current fault epoch; no-op when
  /// the image is not AOT-eligible or the tables are already fresh. Walks
  /// the tier ladder: direct -> compressed -> lazy -> VM.
  void fill_aot(Image& im) const;
  /// Fill `im.aot` as a direct LUT over the full premise space.
  void fill_direct(Image& im, const rules::AotTable::Dims& dims) const;
  /// Fill `im.aot` in the compressed layout for `im.classify.kind` and
  /// validate it against the VM. Returns false (leaving the table cleared)
  /// on any validation mismatch — caller demotes to lazy.
  bool fill_compressed(Image& im, const rules::AotTable::Dims& full) const;
  /// (Re)initialise the lazy tier: size the sub-tables from the budget and
  /// clear any stale contents (buffers are kept across epochs).
  void setup_lazy(Image& im, const rules::AotTable::Dims& full) const;
  /// Lazy-tier miss: compute through the VM, store when the entry encoding
  /// can hold the decision, and fill `d`. Out of line — the hit path stays
  /// small enough to inline.
  void route_lazy_miss(const RouteContext& ctx, RouteDecision& d,
                       std::uint64_t key) const;
  /// Re-point aot_view_ at the active image's table (null when it has
  /// none). Call after anything that changes img_ or its table.
  void refresh_aot_view() const;
  /// Decision-cache + VM/interpreter tiers, out of line so route()'s AOT
  /// hit keeps NRVO (see the definition). Fills `d` in place.
  void route_fallback(const RouteContext& ctx, RouteDecision& d) const;
  RouteDecision compute_route(Image& im, const RouteContext& ctx) const;

  std::string source_;  // pre-attach program; updated on commit_swap()
  std::string route_base_;
  rules::ExecMode mode_;
  int vcs_;
  VcId escape_vc_;
  UpDownTable escape_;
  const Topology* topo_ = nullptr;
  const Mesh* mesh_ = nullptr;  // non-null on 2-D meshes
  const FaultSet* faults_ = nullptr;
  bool cache_wanted_ = true;  // host switch (benches measure cold paths)
  std::uint64_t aot_budget_ = kAotMaxEntries;
  bool compress_wanted_ = true;
  /// Node coordinates flattened for the OffsetSign2D hot path (2-D meshes
  /// only; empty otherwise). Host-scoped: rebuilt at attach().
  std::vector<std::int16_t> coords_x_;
  std::vector<std::int16_t> coords_y_;
  std::unique_ptr<Image> img_;      // active; null before attach()
  std::unique_ptr<Image> pending_;  // prepared swap target, if any
  /// Rolling-commit window: nodes flagged here route from pending_, the
  /// rest from img_. Only mutated in the simulator's serial swap phase.
  bool rolling_ = false;
  std::vector<char> node_on_pending_;
  /// Mutable: machine() (a const accessor) drops the view when it hands
  /// out mutable rule state. Only mutated in single-threaded phases
  /// (attach / reconfigure / commit / test pokes), never during stepping.
  mutable AotView aot_view_;
};

// Defined in the header so the network step and the benches inline the
// AOT hit: out of line, the loop-invariant view and epoch loads are
// reloaded on every decision behind an opaque call.
inline RouteDecision RuleDrivenRouting::route(const RouteContext& ctx) const {
  // Every return below names this one object — the only shape GCC applies
  // NRVO to. Without it each AOT hit pays a ~600-byte RouteDecision copy
  // into the caller's slot, which costs more than the table lookup itself.
  RouteDecision d;
  const AotView& av = aot_view_;
  const std::int32_t pa = ctx.in_port + 1;  // port axis: -1 collapses to 0
  const std::int32_t va = ctx.in_vc + 1;    // vc axis: likewise
  if (av.entries != nullptr) {
    // A non-null view implies attach() ran, and table freshness implies
    // escape-layer freshness (fill_aot asserts the escape table was
    // rebuilt for the same epoch before filling) — so this one check
    // subsumes the attach/escape preconditions route_fallback() enforces.
    FR_REQUIRE_MSG(av.epoch == faults_->epoch(),
                   "stale AOT table: reconfigure() missed an epoch");
    // The range test doubles as the bounds proof for the raw-indexed
    // lookup (and for the coordinate arrays the sign classifier reads);
    // anything outside the table is a VM premise point.
    if (static_cast<std::uint32_t>(ctx.node) <
            static_cast<std::uint32_t>(av.id_bound) &&
        static_cast<std::uint32_t>(ctx.dest) <
            static_cast<std::uint32_t>(av.id_bound) &&
        static_cast<std::uint32_t>(pa) < static_cast<std::uint32_t>(av.ports) &&
        static_cast<std::uint32_t>(va) < static_cast<std::uint32_t>(av.vcs)) {
      // Dest-axis index: the raw dest id (direct), the xor class (both id
      // axes collapse — node_stride is 0 then), or the 2-D offset-sign
      // class. Node ids < id_bound keep every class in range by
      // construction (xor of two k-bit ids is k-bit; signs yield 0..8).
      std::int32_t dc = ctx.dest;
      std::int32_t node_ax = ctx.node;
      if (av.classifier == rules::DestClassifier::XorFold) {
        dc = ctx.node ^ ctx.dest;
        node_ax = 0;
      } else if (av.classifier == rules::DestClassifier::OffsetSign2D) {
        const std::int32_t dx = av.xs[ctx.dest] - av.xs[ctx.node];
        const std::int32_t dy = av.ys[ctx.dest] - av.ys[ctx.node];
        dc = ((dy > 0) - (dy < 0) + 1) * 3 + ((dx > 0) - (dx < 0) + 1);
      }
      const std::uint64_t flat =
          static_cast<std::uint64_t>(node_ax) * av.node_stride +
          static_cast<std::uint64_t>(dc) * av.dest_stride +
          static_cast<std::uint64_t>(pa) * static_cast<std::uint64_t>(av.vcs) +
          static_cast<std::uint64_t>(va);
      const rules::AotEntry e = av.entries[flat];
      // steps == 0: premise point the fill left to the VM (or marked
      // unreachable — the VM reproduces the throw).
      if (e.steps != 0) {
        if (e.count & rules::AotEntry::kArenaFlag) {
          // Oversized / unpackable candidate set: overflow arena.
          const std::uint32_t n =
              e.count & (rules::AotEntry::kArenaFlag - 1u);
          const rules::AotCand* c = av.arena + e.first;
          RouteCandidate* dst = d.candidates.resize_for_overwrite(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            dst[i].port = c[i].port;
            dst[i].vc = c[i].vc;
            dst[i].priority = c[i].priority;
          }
        } else {
          // Unpack every inline slot unconditionally — branch-free; slots
          // past `count` land in the container's unspecified tail.
          RouteCandidate* dst = d.candidates.resize_for_overwrite(e.count);
          for (std::uint32_t i = 0; i < rules::AotEntry::kInlineCands; ++i) {
            dst[i].port = e.inl[i].port;
            dst[i].vc = e.inl[i].vc;
            dst[i].priority = e.inl[i].priority;
          }
        }
        d.steps = e.steps;
        return d;
      }
    }
  } else if (av.lazy != nullptr) {
    LazyState& ls = *av.lazy;
    FR_REQUIRE_MSG(ls.epoch == faults_->epoch(),
                   "stale lazy AOT tier: reconfigure() missed an epoch");
    if (static_cast<std::uint32_t>(ctx.node) <
            static_cast<std::uint32_t>(ls.id_bound) &&
        static_cast<std::uint32_t>(ctx.dest) <
            static_cast<std::uint32_t>(ls.id_bound) &&
        static_cast<std::uint32_t>(pa) < static_cast<std::uint32_t>(ls.ports) &&
        static_cast<std::uint32_t>(va) < static_cast<std::uint32_t>(ls.vcs)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(ctx.dest) *
               static_cast<std::uint64_t>(ls.ports) +
           static_cast<std::uint64_t>(pa)) *
              static_cast<std::uint64_t>(ls.vcs) +
          static_cast<std::uint64_t>(va);
      LazyNode* ln = ls.nodes[static_cast<std::size_t>(ctx.node)].get();
      if (ln != nullptr) {
        // 2-way probe: Fibonacci-hash the key, check both ways of the set.
        const std::uint64_t h = (key * 0x9E3779B97F4A7C15ull) >> 32;
        const std::uint64_t base =
            (h & (static_cast<std::uint64_t>(ls.sets) - 1)) * 2;
        const std::uint64_t tag = key + 1;  // 0 = empty slot
        const LazySlot* s = &ln->slots[static_cast<std::size_t>(base)];
        if (s->tag != tag) {
          ++s;
          if (s->tag != tag) s = nullptr;
        }
        if (s != nullptr) {
          // Lazy entries are inline-only (route_lazy_miss never stores an
          // arena decision), so the hit unpack has no arena branch.
          const rules::AotEntry e = s->e;
          RouteCandidate* dst = d.candidates.resize_for_overwrite(e.count);
          for (std::uint32_t i = 0; i < rules::AotEntry::kInlineCands; ++i) {
            dst[i].port = e.inl[i].port;
            dst[i].vc = e.inl[i].vc;
            dst[i].priority = e.inl[i].priority;
          }
          d.steps = e.steps;
          ++ln->hits;
          return d;
        }
      }
      route_lazy_miss(ctx, d, key);
      return d;
    }
  }
  route_fallback(ctx, d);
  return d;
}

}  // namespace flexrouter
