// Rule-driven routing: executes a routing algorithm written in the rule
// language on the simulated router — the full loop the paper proposes
// (rule compiler -> rule tables -> rule interpreter in the control unit).
//
// Conventions for runnable routing programs:
//  * The decision rule base is named `route` (configurable). Firing it must
//    either RETURN one output (an integer port, or a symbol whose rank in
//    the RETURNS domain is the port index — declare the enum in Compass
//    order {east, west, north, south, local}), or emit one or more
//    `!cand(port, vc, priority)` events.
//  * Inputs are served from a fixed catalog, by name:
//      xpos, ypos, xdes, ydes      mesh coordinates (2-D meshes only)
//      node, dest, src             node ids
//      in_port, in_vc              arrival port / VC (degree = injection)
//      injected                    1 iff the packet was injected here
//      path_len, misrouted         header state
//      link_ok(dirs)               1 iff the local link is usable
//      dest_reachable              1 iff dest reachable from here
//    and, when an escape VC is configured (fault-tolerant programs):
//      escape_ok                   1 iff the escape layer reaches dest
//      escape_port                 the deterministic up*/down* next hop
//      on_escape                   1 iff the packet arrived on the escape VC
//  * Each router node owns an independent register file (one EventManager
//    per node), so stateful programs keep per-node state like real rule
//    bases.
//
// The decision cost (steps) is the number of rule interpretations the
// decision consumed — exactly the unit Section 5 reports.
#pragma once

#include <memory>

#include "ruleengine/event_manager.hpp"
#include "routing/routing.hpp"
#include "routing/updown.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class RuleDrivenRouting final : public RoutingAlgorithm {
 public:
  /// `escape_vc` >= 0 equips the rule program with a hardware escape layer
  /// (a deterministic up*/down* table rebuilt each diagnosis phase, exposed
  /// through the escape_* inputs) — the Duato construction that makes
  /// rule-programmed fault tolerance deadlock-free.
  RuleDrivenRouting(std::string program_source, int num_vcs,
                    rules::ExecMode mode = rules::ExecMode::Table,
                    std::string route_base = "route", VcId escape_vc = -1);

  std::string name() const override;
  int num_vcs() const override { return vcs_; }
  bool is_escape_vc(VcId vc) const override {
    return escape_vc_ < 0 || vc == escape_vc_;
  }

  void attach(const Topology& topo, const FaultSet& faults) override;
  int reconfigure() override;
  RouteDecision route(const RouteContext& ctx) const override;

  const rules::Program& program() const { return *program_; }

  /// Per-node machine access (tests poke state / post events).
  rules::EventManager& machine(NodeId n) const;

 private:
  rules::Value input_value(const RouteContext& ctx, const std::string& name,
                           const std::vector<rules::Value>& idx) const;

  std::string source_;
  std::string route_base_;
  rules::ExecMode mode_;
  int vcs_;
  VcId escape_vc_;
  UpDownTable escape_;
  std::unique_ptr<rules::Program> program_;
  const Topology* topo_ = nullptr;
  const Mesh* mesh_ = nullptr;  // non-null on 2-D meshes
  const FaultSet* faults_ = nullptr;
  mutable std::vector<std::unique_ptr<rules::EventManager>> machines_;
  /// Context of the decision currently being evaluated (input provider).
  mutable const RouteContext* active_ctx_ = nullptr;
};

}  // namespace flexrouter
