// Oblivious dimension-order routing baselines: XY (and its n-dimensional
// generalisation) on meshes, e-cube on hypercubes. Deadlock-free with a
// single virtual channel, fully fault-intolerant — the reference point for
// the paper's overhead comparisons.
#pragma once

#include "routing/routing.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

class DimensionOrderMesh final : public RoutingAlgorithm {
 public:
  explicit DimensionOrderMesh(int num_vcs = 1) : vcs_(num_vcs) {}

  std::string name() const override { return "dor-mesh"; }
  int num_vcs() const override { return vcs_; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  RouteDecision route(const RouteContext& ctx) const override;

 private:
  const Mesh* mesh_ = nullptr;
  int vcs_;
};

class ECubeHypercube final : public RoutingAlgorithm {
 public:
  explicit ECubeHypercube(int num_vcs = 1) : vcs_(num_vcs) {}

  std::string name() const override { return "ecube"; }
  int num_vcs() const override { return vcs_; }

  void attach(const Topology& topo, const FaultSet& faults) override;
  RouteDecision route(const RouteContext& ctx) const override;

 private:
  const Hypercube* cube_ = nullptr;
  int vcs_;
};

}  // namespace flexrouter
