#include "sim/fault_injector.hpp"

#include "topology/graph_algo.hpp"

namespace flexrouter {

int inject_random_link_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected) {
  const Topology& topo = faults.topology();
  auto links = topo.undirected_links();
  rng.shuffle(links);
  int failed = 0;
  for (const LinkRef& l : links) {
    if (failed >= count) break;
    if (!faults.link_usable(l.node, l.port)) continue;  // already down
    faults.fail_link(l.node, l.port);
    if (keep_connected && !all_healthy_connected(faults)) {
      faults.repair_link(l.node, l.port);
      continue;
    }
    ++failed;
  }
  return failed;
}

int inject_random_node_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected) {
  const Topology& topo = faults.topology();
  std::vector<NodeId> nodes(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    nodes[static_cast<std::size_t>(i)] = i;
  rng.shuffle(nodes);
  int failed = 0;
  for (const NodeId n : nodes) {
    if (failed >= count) break;
    if (faults.node_faulty(n)) continue;
    faults.fail_node(n);
    if (keep_connected && !all_healthy_connected(faults)) {
      faults.repair_node(n);
      continue;
    }
    ++failed;
  }
  return failed;
}

void inject_figure2_chain(FaultSet& faults, const Mesh& mesh, int x,
                          int length) {
  FR_REQUIRE(mesh.dims() == 2);
  FR_REQUIRE(x >= 0 && x + 1 < mesh.radix(0));
  FR_REQUIRE(length >= 1 && length <= mesh.radix(1));
  for (int y = 0; y < length; ++y)
    faults.fail_link(mesh.at(x, y), port_of(Compass::East));
}

void inject_fault_block(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                        int x1, int y1) {
  FR_REQUIRE(mesh.dims() == 2);
  FR_REQUIRE(x0 <= x1 && y0 <= y1);
  for (int x = x0; x <= x1; ++x)
    for (int y = y0; y <= y1; ++y) faults.fail_node(mesh.at(x, y));
}

void inject_concave_faults(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                           int x1, int y1) {
  FR_REQUIRE(mesh.dims() == 2);
  FR_REQUIRE(x0 < x1 && y0 < y1);
  const int mx = (x0 + x1) / 2;
  const int my = (y0 + y1) / 2;
  for (int x = x0; x <= x1; ++x)
    for (int y = y0; y <= y1; ++y) {
      const bool north_east_quadrant = x > mx && y > my;
      if (!north_east_quadrant) faults.fail_node(mesh.at(x, y));
    }
}

}  // namespace flexrouter
