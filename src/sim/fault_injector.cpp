#include "sim/fault_injector.hpp"

#include "topology/graph_algo.hpp"
#include "topology/torus.hpp"

namespace flexrouter {

int inject_random_link_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected) {
  const Topology& topo = faults.topology();
  auto links = topo.undirected_links();
  rng.shuffle(links);
  int failed = 0;
  for (const LinkRef& l : links) {
    if (failed >= count) break;
    if (!faults.link_usable(l.node, l.port)) continue;  // already down
    faults.fail_link(l.node, l.port);
    if (keep_connected && !all_healthy_connected(faults)) {
      faults.repair_link(l.node, l.port);
      continue;
    }
    ++failed;
  }
  return failed;
}

int inject_random_node_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected) {
  const Topology& topo = faults.topology();
  std::vector<NodeId> nodes(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    nodes[static_cast<std::size_t>(i)] = i;
  rng.shuffle(nodes);
  int failed = 0;
  for (const NodeId n : nodes) {
    if (failed >= count) break;
    if (faults.node_faulty(n)) continue;
    faults.fail_node(n);
    if (keep_connected && !all_healthy_connected(faults)) {
      faults.repair_node(n);
      continue;
    }
    ++failed;
  }
  return failed;
}

namespace {

/// Shared contract for the paper's 2-D shaped injectors: the
/// [x0,x1]x[y0,y1] region must lie inside a 2-D mesh. Out-of-range
/// coordinates would otherwise surface as an opaque index assertion deep
/// inside Mesh::at. Higher-dimensional grids take inject_fault_region.
void require_region_in_mesh(const Mesh& mesh, int x0, int y0, int x1,
                            int y1) {
  FR_REQUIRE_MSG(mesh.dims() == 2,
                 "shaped 2-D fault injectors need a 2-D mesh, got '" +
                     mesh.name() + "'; use inject_fault_region for k-ary "
                     "grids of other dimensionality");
  FR_REQUIRE_MSG(x0 >= 0 && y0 >= 0, "fault region starts outside the mesh");
  FR_REQUIRE_MSG(x1 < mesh.radix(0) && y1 < mesh.radix(1),
                 "fault region extends past the mesh edge");
}

/// Per-dimension geometry of the two grid topologies, resolved once so
/// inject_fault_region can walk either without a shared grid base class.
struct GridView {
  int dims = 0;
  const Mesh* mesh = nullptr;
  const Torus* torus = nullptr;

  int radix(int d) const { return mesh ? mesh->radix(d) : torus->radix(d); }
  NodeId node_at(const std::vector<int>& c) const {
    return mesh ? mesh->node_at(c) : torus->node_at(c);
  }
};

}  // namespace

int inject_fault_region(FaultSet& faults, const std::vector<int>& lo,
                        const std::vector<int>& hi) {
  const Topology& topo = faults.topology();
  GridView grid;
  grid.mesh = dynamic_cast<const Mesh*>(&topo);
  grid.torus = grid.mesh ? nullptr : dynamic_cast<const Torus*>(&topo);
  FR_REQUIRE_MSG(grid.mesh != nullptr || grid.torus != nullptr,
                 "inject_fault_region needs a k-ary Mesh or Torus, got '" +
                     topo.name() + "'");
  grid.dims = grid.mesh ? grid.mesh->dims() : grid.torus->dims();
  FR_REQUIRE_MSG(static_cast<int>(lo.size()) == grid.dims &&
                     static_cast<int>(hi.size()) == grid.dims,
                 "fault region on '" + topo.name() + "' needs one [lo, hi] "
                 "pair per dimension");
  for (int d = 0; d < grid.dims; ++d) {
    FR_REQUIRE_MSG(lo[static_cast<std::size_t>(d)] >= 0 &&
                       hi[static_cast<std::size_t>(d)] <
                           grid.radix(d),
                   "fault region extends past the edge of '" + topo.name() +
                       "'");
    FR_REQUIRE_MSG(lo[static_cast<std::size_t>(d)] <=
                       hi[static_cast<std::size_t>(d)],
                   "fault region corners are inverted");
  }
  // Mixed-radix odometer over the hyper-rectangle, dimension 0 fastest.
  std::vector<int> c = lo;
  int failed = 0;
  for (;;) {
    const NodeId n = grid.node_at(c);
    if (!faults.node_faulty(n)) {
      faults.fail_node(n);
      ++failed;
    }
    int d = 0;
    while (d < grid.dims && ++c[static_cast<std::size_t>(d)] >
                                hi[static_cast<std::size_t>(d)]) {
      c[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];
      ++d;
    }
    if (d == grid.dims) break;
  }
  return failed;
}

void inject_figure2_chain(FaultSet& faults, const Mesh& mesh, int x,
                          int length) {
  FR_REQUIRE_MSG(length >= 1, "fault chain must have at least one link");
  // East links out of column x: the region spans columns x..x+1.
  require_region_in_mesh(mesh, x, 0, x + 1, length - 1);
  for (int y = 0; y < length; ++y)
    faults.fail_link(mesh.at(x, y), port_of(Compass::East));
}

void inject_fault_block(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                        int x1, int y1) {
  FR_REQUIRE_MSG(x0 <= x1 && y0 <= y1, "fault block corners are inverted");
  require_region_in_mesh(mesh, x0, y0, x1, y1);
  for (int x = x0; x <= x1; ++x)
    for (int y = y0; y <= y1; ++y) faults.fail_node(mesh.at(x, y));
}

void inject_concave_faults(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                           int x1, int y1) {
  FR_REQUIRE_MSG(x0 < x1 && y0 < y1,
                 "concave fault region needs a 2x2 or larger block");
  require_region_in_mesh(mesh, x0, y0, x1, y1);
  const int mx = (x0 + x1) / 2;
  const int my = (y0 + y1) / 2;
  for (int x = x0; x <= x1; ++x)
    for (int y = y0; y <= y1; ++y) {
      const bool north_east_quadrant = x > mx && y > my;
      if (!north_east_quadrant) faults.fail_node(mesh.at(x, y));
    }
}

}  // namespace flexrouter
