#include "sim/shard_pool.hpp"

#include "common/assert.hpp"

namespace flexrouter {

namespace {

/// Contiguous shard range of worker `w` out of `t` over `s` shards.
inline int range_begin(int w, int t, int s) { return (w * s) / t; }

}  // namespace

ShardPool::ShardPool(int threads) : threads_(threads) {
  FR_REQUIRE(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardPool::run(int num_shards, Job job, void* ctx) {
  FR_REQUIRE(num_shards >= 1 && job != nullptr);
  const int active = threads_ < num_shards ? threads_ : num_shards;
  if (active > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ctx_ = ctx;
    num_shards_ = num_shards;
    outstanding_ = active - 1;
    ++epoch_;
  }
  if (active > 1) cv_start_.notify_all();
  // The caller is worker 0.
  const int end = active > 1 ? range_begin(1, active, num_shards) : num_shards;
  for (int s = 0; s < end; ++s) job(ctx, s);
  if (active > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  }
}

void ShardPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Job job;
    void* ctx;
    int num_shards;
    int active;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
      ctx = ctx_;
      num_shards = num_shards_;
      active = threads_ < num_shards ? threads_ : num_shards;
    }
    if (worker < active) {
      const int begin = range_begin(worker, active, num_shards);
      const int end = range_begin(worker + 1, active, num_shards);
      for (int s = begin; s < end; ++s) job(ctx, s);
    }
    bool last;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Workers beyond the active count still acknowledge the epoch; only
      // active ones are counted in outstanding_.
      if (worker < active) {
        last = --outstanding_ == 0;
      } else {
        last = false;
      }
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace flexrouter
