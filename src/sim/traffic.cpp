#include "sim/traffic.hpp"

#include <numeric>

#include "common/bitops.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace flexrouter {

NodeId UniformTraffic::dest(NodeId src, Rng& rng) const {
  const auto n = static_cast<std::uint64_t>(topo_->num_nodes());
  FR_REQUIRE(n >= 2);
  NodeId d = src;
  while (d == src)
    d = static_cast<NodeId>(rng.next_below(n));
  return d;
}

NodeId BitComplementTraffic::dest(NodeId src, Rng&) const {
  const auto n = topo_->num_nodes();
  FR_REQUIRE_MSG(is_pow2(static_cast<std::uint64_t>(n)),
                 "bitcomp needs a power-of-two node count");
  return (n - 1) ^ src;
}

TransposeTraffic::TransposeTraffic(const Topology& topo) : topo_(&topo) {
  const auto* mesh = dynamic_cast<const Mesh*>(&topo);
  const auto* torus = dynamic_cast<const Torus*>(&topo);
  FR_REQUIRE_MSG(mesh != nullptr || torus != nullptr,
                 "transpose needs a mesh or torus");
  if (mesh != nullptr) {
    FR_REQUIRE_MSG(mesh->dims() == 2 && mesh->radix(0) == mesh->radix(1),
                   "transpose needs a square 2-D mesh");
  } else {
    FR_REQUIRE_MSG(torus->dims() == 2 && torus->radix(0) == torus->radix(1),
                   "transpose needs a square 2-D torus");
  }
}

NodeId TransposeTraffic::dest(NodeId src, Rng&) const {
  if (const auto* mesh = dynamic_cast<const Mesh*>(topo_))
    return mesh->at(mesh->y_of(src), mesh->x_of(src));
  const auto* torus = dynamic_cast<const Torus*>(topo_);
  return torus->node_at({torus->coord(src, 1), torus->coord(src, 0)});
}

TornadoTraffic::TornadoTraffic(const Topology& topo) : topo_(&topo) {
  FR_REQUIRE_MSG(dynamic_cast<const Mesh*>(&topo) != nullptr ||
                     dynamic_cast<const Torus*>(&topo) != nullptr,
                 "tornado needs a mesh or torus");
}

NodeId TornadoTraffic::dest(NodeId src, Rng&) const {
  if (const auto* mesh = dynamic_cast<const Mesh*>(topo_)) {
    std::vector<int> c = mesh->coords(src);
    for (int d = 0; d < mesh->dims(); ++d)
      c[static_cast<std::size_t>(d)] =
          (c[static_cast<std::size_t>(d)] + mesh->radix(d) / 2) %
          mesh->radix(d);
    return mesh->node_at(c);
  }
  const auto* torus = dynamic_cast<const Torus*>(topo_);
  std::vector<int> c(static_cast<std::size_t>(torus->dims()));
  for (int d = 0; d < torus->dims(); ++d)
    c[static_cast<std::size_t>(d)] =
        (torus->coord(src, d) + torus->radix(d) / 2) % torus->radix(d);
  return torus->node_at(c);
}

HotspotTraffic::HotspotTraffic(const Topology& topo, NodeId hot,
                               double fraction)
    : topo_(&topo), hot_(hot), fraction_(fraction), uniform_(topo) {
  FR_REQUIRE(topo.valid_node(hot));
  FR_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
}

NodeId HotspotTraffic::dest(NodeId src, Rng& rng) const {
  if (src != hot_ && rng.next_bool(fraction_)) return hot_;
  return uniform_.dest(src, rng);
}

PermutationTraffic::PermutationTraffic(const Topology& topo,
                                       std::uint64_t seed) {
  perm_.resize(static_cast<std::size_t>(topo.num_nodes()));
  std::iota(perm_.begin(), perm_.end(), NodeId{0});
  Rng rng(seed);
  rng.shuffle(perm_);
  // Eliminate fixed points by rotating them into a cycle.
  std::vector<std::size_t> fixed;
  for (std::size_t i = 0; i < perm_.size(); ++i)
    if (perm_[i] == static_cast<NodeId>(i)) fixed.push_back(i);
  for (std::size_t k = 0; k + 1 < fixed.size(); k += 1)
    std::swap(perm_[fixed[k]], perm_[fixed[k + 1]]);
  if (fixed.size() == 1) {
    const auto other = (fixed[0] + 1) % perm_.size();
    std::swap(perm_[fixed[0]], perm_[other]);
  }
}

NodeId PermutationTraffic::dest(NodeId src, Rng&) const {
  return perm_[static_cast<std::size_t>(src)];
}

std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const Topology& topo,
                                             std::uint64_t seed) {
  if (name == "uniform") return std::make_unique<UniformTraffic>(topo);
  if (name == "bitcomp") return std::make_unique<BitComplementTraffic>(topo);
  if (name == "transpose") return std::make_unique<TransposeTraffic>(topo);
  if (name == "tornado") return std::make_unique<TornadoTraffic>(topo);
  if (name == "hotspot")
    return std::make_unique<HotspotTraffic>(topo, topo.num_nodes() / 2, 0.1);
  if (name == "permutation")
    return std::make_unique<PermutationTraffic>(topo, seed);
  FR_REQUIRE_MSG(false, "unknown traffic pattern '" + name + "'");
  return nullptr;
}

}  // namespace flexrouter
