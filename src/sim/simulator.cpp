#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "routing/rule_driven.hpp"
#include "topology/graph_algo.hpp"

namespace flexrouter {

namespace {

/// Exact latency order statistics without retaining every sample: packet
/// latencies are integral cycle counts, so values below kRange live in a
/// fixed count table (one slot per cycle) and only the rare tail beyond it
/// is kept verbatim. percentile() reproduces the sorted-sample linear
/// interpolation bit for bit, at O(kRange) memory instead of O(packets).
class LatencyQuantiles {
 public:
  static constexpr std::int64_t kRange = 4096;

  void add(double x) {
    const double floor_x = std::floor(x);
    if (x >= 0.0 && x < static_cast<double>(kRange) && floor_x == x) {
      ++counts_[static_cast<std::size_t>(x)];
    } else {
      // Tail (or non-integral, which the simulator never produces): every
      // counted value is an integer < kRange, so keeping the outliers
      // sorted keeps the merged order trivial.
      FR_ASSERT_MSG(x >= static_cast<double>(kRange),
                    "negative or fractional latency sample");
      outliers_.push_back(x);
      outliers_sorted_ = false;
    }
    ++count_;
  }

  std::int64_t count() const { return count_; }

  /// p in [0, 100]; same rank + interpolation rule as sorting all samples.
  double percentile(double p) const {
    FR_REQUIRE(p >= 0.0 && p <= 100.0);
    FR_REQUIRE_MSG(count_ > 0, "percentile of empty latency set");
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    const auto i = static_cast<std::int64_t>(rank);
    const double frac = rank - static_cast<double>(i);
    if (i + 1 >= count_) return order_stat(count_ - 1);
    return order_stat(i) * (1.0 - frac) + order_stat(i + 1) * frac;
  }

 private:
  double order_stat(std::int64_t k) const {
    std::int64_t seen = 0;
    for (std::int64_t v = 0; v < kRange; ++v) {
      seen += counts_[static_cast<std::size_t>(v)];
      if (seen > k) return static_cast<double>(v);
    }
    if (!outliers_sorted_) {
      std::sort(outliers_.begin(), outliers_.end());
      outliers_sorted_ = true;
    }
    return outliers_[static_cast<std::size_t>(k - seen)];
  }

  std::int64_t counts_[kRange] = {};
  std::int64_t count_ = 0;
  mutable std::vector<double> outliers_;
  mutable bool outliers_sorted_ = true;
};

}  // namespace

std::string SimResult::to_string() const {
  std::ostringstream os;
  os << "delivered " << delivered_packets << "/" << injected_packets
     << " avg_lat=" << avg_latency << " p99=" << p99_latency
     << " thpt=" << throughput << " hops=" << avg_hops
     << " steps/dec=" << avg_decision_steps
     << " misrouted=" << misrouted_fraction * 100.0 << "%";
  // Recovery metrics only appear when the lifecycle did something, so
  // fault-free output stays byte-identical to earlier revisions.
  if (fault_events > 0 || packets_lost > 0 || worms_killed > 0) {
    os << " | faults=" << fault_events << " recoveries=" << recovery_events
       << " recovery_cycles=" << recovery_cycles << " lost=" << packets_lost
       << " retx=" << packets_retransmitted
       << " unrecoverable=" << packets_unrecoverable
       << " kills=" << worms_killed << " avail=" << availability;
    if (repair_events > 0) os << " repairs=" << repair_events;
    if (degrade_events > 0) os << " degrades=" << degrade_events;
  }
  // Swap metrics likewise appear only when a swap committed.
  if (rule_swaps > 0) {
    os << " | swaps=" << rule_swaps << " swap_gated=" << swap_gated_cycles;
    if (swap_gated_node_cycles > 0)
      os << " swap_gated_nodes=" << swap_gated_node_cycles;
  }
  if (deadlock_suspected) os << " [DEADLOCK SUSPECTED]";
  return os.str();
}

Simulator::Simulator(Network& net, TrafficPattern& traffic,
                     const SimConfig& cfg)
    : net_(&net), traffic_(&traffic), cfg_(cfg), rng_(cfg.seed) {
  FR_REQUIRE_MSG(!cfg.idle_skip || net.event_capable(),
                 "idle_skip requires an event-capable network "
                 "(NetworkConfig::event_driven or shards > 1)");
  lifecycle_ = cfg.structured_watchdog;
  retry_queue_.reserve(16);
}

void Simulator::set_fault_schedule(const FaultSchedule& schedule) {
  events_ = schedule.events();  // sorted copy
  next_event_ = 0;
  if (!events_.empty()) lifecycle_ = true;
}

void Simulator::schedule_rule_swap(Cycle at, std::string program_source,
                                   RuleSwapPolicy policy) {
  FR_REQUIRE_MSG(
      dynamic_cast<RuleDrivenRouting*>(&net_->algorithm()) != nullptr,
      "schedule_rule_swap needs a rule-driven routing algorithm");
  FR_REQUIRE_MSG(at >= now_, "rule swap scheduled in the past");
  RuleSwap s;
  s.at = at;
  s.source = std::move(program_source);
  s.policy = policy;
  const auto pos = std::upper_bound(
      swaps_.begin() + static_cast<std::ptrdiff_t>(next_swap_), swaps_.end(),
      s.at, [](Cycle a, const RuleSwap& b) { return a < b.at; });
  swaps_.insert(pos, std::move(s));
}

void Simulator::process_rule_swaps(SimResult& result) {
  if (!swap_work_pending()) return;
  if (!swap_draining_ && !rolling_active_) {
    if (next_swap_ >= swaps_.size() || swaps_[next_swap_].at > now_) return;
    const RuleSwap& s = swaps_[next_swap_];
    auto* rd = dynamic_cast<RuleDrivenRouting*>(&net_->algorithm());
    FR_REQUIRE_MSG(rd != nullptr,
                   "scheduled rule swap needs a rule-driven routing algorithm");
    // Build the pending image now (parse + compile + AOT fill); modeled as
    // concurrent with operation, so it costs no simulated cycles. A bad
    // program throws here, before any packet routes under it.
    if (!rd->swap_prepared()) rd->prepare_swap(s.source);
    if (s.policy == RuleSwapPolicy::Rolling) {
      rolling_active_ = true;
      swap_started_ = now_;
      const int shards = std::min(
          cfg_.rolling_shards < 1 ? 1 : cfg_.rolling_shards,
          static_cast<int>(net_->topology().num_nodes()));
      rolling_plan_ = plan_shards(net_->topology(), shards);
      rolling_shard_ = 0;
      rolling_committed_.assign(
          static_cast<std::size_t>(net_->topology().num_nodes()), 0);
      rd->begin_rolling_commit();
      // Fall through to the commit sweep: already-quiet nodes of the first
      // shard flip this very cycle.
    } else {
      const bool quiescent =
          s.policy == RuleSwapPolicy::Quiescent ||
          (s.policy == RuleSwapPolicy::Auto && !rd->swap_target_stateless());
      if (!quiescent) {
        // Immediate: commit between cycles, zero gated cycles. Sound for
        // stateless programs — every hop decides independently and deadlock
        // freedom lives in the host escape layer, which survives the swap.
        rd->commit_swap();
        ++next_swap_;
        ++result.rule_swaps;
        return;
      }
      swap_draining_ = true;  // open the quiescent gate (injection stops)
      swap_started_ = now_;
    }
  }
  if (swap_draining_ && net_->idle()) {
    auto* rd = dynamic_cast<RuleDrivenRouting*>(&net_->algorithm());
    FR_ASSERT(rd != nullptr);
    rd->commit_swap();
    swap_draining_ = false;
    ++next_swap_;
    ++result.rule_swaps;
    result.swap_gated_cycles += now_ - swap_started_;
    // The quiescent gate stops every node for the whole drain window — the
    // node-cycle figure Rolling is compared against.
    result.swap_gated_node_cycles +=
        (now_ - swap_started_) *
        static_cast<Cycle>(net_->topology().num_nodes());
  }
  if (rolling_active_) {
    auto* rd = dynamic_cast<RuleDrivenRouting*>(&net_->algorithm());
    FR_ASSERT(rd != nullptr);
    // Commit every quiet node of the draining shard; when the shard is
    // fully flipped move to the next (looping — the next shard may already
    // be quiet this same cycle).
    while (rolling_shard_ < static_cast<std::size_t>(rolling_plan_.num_shards)) {
      bool all_committed = true;
      for (const NodeId n : rolling_plan_.nodes[rolling_shard_]) {
        if (rolling_committed_[static_cast<std::size_t>(n)] != 0) continue;
        if (net_->node_quiet(n)) {
          rd->commit_swap_node(n);
          rolling_committed_[static_cast<std::size_t>(n)] = 1;
        } else {
          all_committed = false;
        }
      }
      if (!all_committed) break;
      ++rolling_shard_;
    }
    if (rolling_shard_ >= static_cast<std::size_t>(rolling_plan_.num_shards)) {
      rd->finish_rolling_commit();
      rolling_active_ = false;
      ++next_swap_;
      ++result.rule_swaps;
    } else {
      // Node-cycle downtime accounting: only the draining shard's
      // still-uncommitted nodes are injection-gated this cycle.
      Cycle gated = 0;
      for (const NodeId n : rolling_plan_.nodes[rolling_shard_])
        if (rolling_committed_[static_cast<std::size_t>(n)] == 0) ++gated;
      result.swap_gated_node_cycles += gated;
    }
  }
}

void Simulator::refresh_components() {
  const FaultSet& faults = net_->faults();
  if (!conn_valid_ || conn_epoch_ != faults.epoch()) {
    conn_comp_ = components(faults);
    conn_epoch_ = faults.epoch();
    conn_valid_ = true;
  }
}

void Simulator::inject_offered_load(bool measured) {
  const Topology& topo = net_->topology();
  const FaultSet& faults = net_->faults();
  // Healthy-component ids, recomputed once per fault epoch: the redraw
  // loop below asks "is dest reachable from n" per candidate, which as a
  // BFS (graph_algo connected()) dominated injection cost.
  refresh_components();
  const bool bimodal =
      cfg_.long_packet_length > 0 && cfg_.long_packet_fraction > 0.0;
  const double mean_length =
      bimodal ? (1.0 - cfg_.long_packet_fraction) * cfg_.packet_length +
                    cfg_.long_packet_fraction * cfg_.long_packet_length
              : static_cast<double>(cfg_.packet_length);
  const double packet_prob = cfg_.injection_rate / mean_length;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (faults.node_faulty(n)) continue;
    // Live-killed nodes are dead hardware even before the FaultSet catches
    // up at the next quiescent commit (gated on lifecycle_ so the fault-free
    // RNG stream is untouched).
    if (lifecycle_ && net_->node_live_killed(n)) continue;
    // A rolling swap gates only the draining shard's uncommitted nodes —
    // the availability win over the quiescent policy. Skipped before the
    // RNG draw, like the kill skip above; the gate set is deterministic
    // (plan + network state), so results stay bit-identical across
    // execution shard counts.
    if (rolling_active_ && rolling_gated(n)) continue;
    if (!rng_.next_bool(packet_prob)) continue;
    const int length = bimodal && rng_.next_bool(cfg_.long_packet_fraction)
                           ? cfg_.long_packet_length
                           : cfg_.packet_length;
    // Redraw until the destination is healthy and connected (fault
    // assumption iii); give up after a few tries (pattern may be stuck on a
    // faulty fixed destination).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId dest = traffic_->dest(n, rng_);
      if (dest == n || !faults.node_ok(dest)) continue;
      if (lifecycle_ && net_->node_live_killed(dest)) continue;
      if (conn_comp_[static_cast<std::size_t>(n)] !=
          conn_comp_[static_cast<std::size_t>(dest)])
        continue;
      const PacketId id = net_->send(n, dest, length, now_);
      if (measured) {
        measured_.push_back(id);
        mark_measured(id);
        ++measured_outstanding_;
      }
      break;
    }
  }
}

Cycle Simulator::jump_span(Cycle remaining) const {
  Cycle jump = remaining;
  // Detecting means update_recovery did not transition, so detect_at_ >
  // now_; fire_due_faults drained every event with at <= now_, so the next
  // event (if any) is strictly ahead. Both bounds keep jump >= 1.
  if (detect_at_ - now_ < jump) jump = detect_at_ - now_;
  if (next_event_ < events_.size() && events_[next_event_].at - now_ < jump)
    jump = events_[next_event_].at - now_;
  // A scheduled rule swap is a boundary too: the jump must not overshoot
  // its due cycle (a due-but-draining swap has at <= now_ and binds nothing
  // — the commit happens at idle, which an inert network reaches anyway).
  if (next_swap_ < swaps_.size() && swaps_[next_swap_].at > now_ &&
      swaps_[next_swap_].at - now_ < jump)
    jump = swaps_[next_swap_].at - now_;
  return jump < 1 ? 1 : jump;
}

void Simulator::count_measured_deliveries() {
  for (const PacketId id : net_->delivered_last_cycle())
    if (is_measured(id)) --measured_outstanding_;
}

SimResult Simulator::run() {
  measured_.clear();
  std::fill(measured_flag_.begin(), measured_flag_.end(), 0);
  measured_outstanding_ = 0;
  retry_queue_.clear();
  gated_measure_cycles_ = 0;
  lost_cursor_ = net_->lost_log().size();
  wd_armed_ = false;
  wd_stall_ = 0;
  SimResult result;

  const RouterStats before = net_->aggregate_stats();

  for (Cycle c = 0; c < cfg_.warmup_cycles; ++c) {
    if (lifecycle_) {
      fire_due_faults(result);
      update_recovery(result);
    }
    process_rule_swaps(result);
    if (rstate_ == RecoveryState::Normal && !swap_draining_) {
      if (lifecycle_) flush_retry_queue(result);
      inject_offered_load(false);
    }
    if (cfg_.idle_skip && net_->inert()) {
      // Inert network: stepping would change nothing. Normal-state cycles
      // advance one at a time (the injection RNG above already drew for
      // this cycle); Detecting-state cycles consume no randomness, so the
      // clock jumps to the next schedule boundary. Draining is never inert
      // here: update_recovery would have closed the diagnosis already.
      const Cycle jump = rstate_ == RecoveryState::Detecting
                             ? jump_span(cfg_.warmup_cycles - c)
                             : 1;
      net_->skip_cycle();
      now_ += jump;
      c += jump - 1;
      skipped_cycles_ += jump;
      continue;
    }
    net_->step(now_++);
    if (lifecycle_) {
      count_measured_deliveries();
      process_losses(result);
      if (rstate_ == RecoveryState::Draining) drain_watchdog_tick(result);
    }
  }
  for (Cycle c = 0; c < cfg_.measure_cycles; ++c) {
    if (lifecycle_) {
      fire_due_faults(result);
      update_recovery(result);
    }
    process_rule_swaps(result);
    if (rstate_ == RecoveryState::Normal && !swap_draining_) {
      if (lifecycle_) flush_retry_queue(result);
      inject_offered_load(true);
    } else {
      ++gated_measure_cycles_;
    }
    if (cfg_.idle_skip && net_->inert()) {
      const Cycle jump = rstate_ == RecoveryState::Detecting
                             ? jump_span(cfg_.measure_cycles - c)
                             : 1;
      // The else-branch above already gated this cycle; the jumped-over
      // ones are gated too (only Detecting jumps more than one).
      if (rstate_ != RecoveryState::Normal || swap_draining_)
        gated_measure_cycles_ += jump - 1;
      net_->skip_cycle();
      now_ += jump;
      c += jump - 1;
      skipped_cycles_ += jump;
      continue;
    }
    net_->step(now_++);
    count_measured_deliveries();
    if (lifecycle_) {
      process_losses(result);
      if (rstate_ == RecoveryState::Draining) drain_watchdog_tick(result);
    }
  }

  // Drain: no further offered load; watch for stalls. The outstanding
  // counter (fed by delivered_last_cycle) replaces the per-cycle rescan of
  // every measured packet record. With the lifecycle armed the loop also
  // runs any still-open recovery to completion (pending damage committed,
  // retry queue flushed) so every measured packet ends delivered or
  // unrecoverable.
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  Cycle drained = 0;
  while (measured_outstanding_ > 0 || swap_draining_ || rolling_active_ ||
         (lifecycle_ && (rstate_ != RecoveryState::Normal ||
                         !retry_queue_.empty() || net_->recovery_pending()))) {
    if (drained++ > cfg_.drain_limit) {
      capture_blocked_chain(result);
      result.deadlock_suspected = true;
      break;
    }
    if (lifecycle_) {
      fire_due_faults(result);
      update_recovery(result);
      if (rstate_ == RecoveryState::Normal) flush_retry_queue(result);
    }
    process_rule_swaps(result);
    net_->step(now_++);
    count_measured_deliveries();
    if (lifecycle_) process_losses(result);
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) {
        if (lifecycle_ && structured_kill(result)) {
          stall = 0;
          continue;
        }
        capture_blocked_chain(result);
        result.deadlock_suspected = true;
        break;
      }
    } else {
      stall = 0;
      last_movement = moved;
    }
  }

  // Collect metrics over measured packets — a single pass: latency sum,
  // quantiles and the split by misroute mark all come from the same loop.
  // Retry chains resolve to the final attempt: latency spans the original
  // creation to the final delivery (the abort-and-retransmit penalty is
  // real latency), hops/misroute come from the attempt that got through.
  LatencyQuantiles latency;
  StreamingStats hops, ratio, lat_misrouted, lat_direct;
  std::int64_t delivered = 0, misrouted = 0, delivered_flits = 0;
  double latency_sum = 0.0;
  for (const PacketId id : measured_) {
    const PacketRecord& orig = net_->record(id);
    if (orig.retry_of >= 0) continue;  // resends fold into their root
    const PacketRecord* rec = &orig;
    if (orig.last_attempt >= 0) rec = &net_->record(orig.last_attempt);
    if (!rec->done()) continue;
    ++delivered;
    delivered_flits += rec->length;
    const auto lat = static_cast<double>(rec->delivered - orig.created);
    latency.add(lat);
    latency_sum += lat;
    (rec->misrouted ? lat_misrouted : lat_direct).add(lat);
    hops.add(rec->hops);
    const int min_hops = net_->topology().distance(rec->src, rec->dest);
    if (min_hops > 0)
      ratio.add(static_cast<double>(rec->hops) / min_hops);
    misrouted += rec->misrouted ? 1 : 0;
  }

  result.injected_packets = static_cast<std::int64_t>(measured_.size());
  result.delivered_packets = delivered;
  if (delivered > 0) {
    result.avg_latency = latency_sum / static_cast<double>(delivered);
    result.p50_latency = latency.percentile(50);
    result.p99_latency = latency.percentile(99);
    result.avg_hops = hops.mean();
    result.min_hops_ratio = ratio.count() > 0 ? ratio.mean() : 0.0;
    result.misrouted_fraction =
        static_cast<double>(misrouted) / static_cast<double>(delivered);
    result.avg_latency_misrouted =
        lat_misrouted.count() > 0 ? lat_misrouted.mean() : 0.0;
    result.avg_latency_direct =
        lat_direct.count() > 0 ? lat_direct.mean() : 0.0;
  }
  const auto healthy_nodes = static_cast<double>(
      net_->topology().num_nodes() - net_->faults().num_node_faults());
  result.throughput =
      healthy_nodes > 0 && cfg_.measure_cycles > 0
          ? static_cast<double>(delivered_flits) /
                (healthy_nodes * static_cast<double>(cfg_.measure_cycles))
          : 0.0;

  const RouterStats after = net_->aggregate_stats();
  const std::int64_t decisions = after.packets_routed - before.packets_routed;
  result.avg_decision_steps =
      decisions > 0 ? static_cast<double>(after.decision_steps -
                                          before.decision_steps) /
                          static_cast<double>(decisions)
                    : 0.0;
  result.cycles_run = now_;
  result.availability =
      cfg_.measure_cycles > 0
          ? 1.0 - static_cast<double>(gated_measure_cycles_) /
                      static_cast<double>(cfg_.measure_cycles)
          : 1.0;
  return result;
}

void Simulator::fire_due_faults(SimResult& result) {
  while (next_event_ < events_.size() && events_[next_event_].at <= now_) {
    const FaultEvent& e = events_[next_event_++];
    // Kills always open a recovery window; repairs only when they queued a
    // revival (repairing a healthy resource is a no-op, not a diagnosis);
    // fail-slow degradation is applied live and never opens one.
    bool opens_recovery = false;
    switch (e.kind) {
      case FaultEvent::Kind::LinkFault:
        net_->kill_link_live(e.node, e.port);
        ++result.fault_events;
        opens_recovery = true;
        break;
      case FaultEvent::Kind::NodeFault:
        net_->kill_node_live(e.node);
        ++result.fault_events;
        opens_recovery = true;
        break;
      case FaultEvent::Kind::LinkRepair:
        if (net_->repair_link_live(e.node, e.port)) {
          ++result.repair_events;
          opens_recovery = true;
        }
        break;
      case FaultEvent::Kind::NodeRepair:
        if (net_->repair_node_live(e.node)) {
          ++result.repair_events;
          opens_recovery = true;
        }
        break;
      case FaultEvent::Kind::LinkDegrade:
        net_->degrade_link_live(e.node, e.port, e.factor);
        ++result.degrade_events;
        break;
    }
    if (opens_recovery && rstate_ == RecoveryState::Normal) {
      rstate_ = RecoveryState::Detecting;
      detect_at_ = now_ + cfg_.detection_delay;
      recovery_started_ = now_;
    }
  }
}

void Simulator::update_recovery(SimResult& result) {
  if (rstate_ == RecoveryState::Detecting && now_ >= detect_at_) {
    rstate_ = RecoveryState::Draining;
    ++result.recovery_events;
    wd_armed_ = false;
    wd_stall_ = 0;
  }
  if (rstate_ == RecoveryState::Draining && net_->idle()) {
    if (net_->recovery_pending())
      result.reconfig_exchanges += net_->commit_pending_faults();
    result.recovery_cycles += now_ - recovery_started_;
    result.recovery_durations.push_back(now_ - recovery_started_);
    rstate_ = RecoveryState::Normal;
  }
}

void Simulator::drain_watchdog_tick(SimResult& result) {
  const std::int64_t moved = net_->total_flit_movements();
  if (!wd_armed_ || moved != wd_last_movement_) {
    wd_armed_ = true;
    wd_last_movement_ = moved;
    wd_stall_ = 0;
    return;
  }
  if (++wd_stall_ > cfg_.watchdog_window) {
    if (!structured_kill(result)) capture_blocked_chain(result);
    wd_stall_ = 0;
  }
}

void Simulator::process_losses(SimResult& result) {
  const std::vector<PacketId>& log = net_->lost_log();
  for (; lost_cursor_ < log.size(); ++lost_cursor_) {
    const PacketId id = log[lost_cursor_];
    const PacketRecord& rec = net_->record(id);
    const PacketId root = rec.retry_of >= 0 ? rec.retry_of : id;
    const bool meas = is_measured(root);
    if (meas) ++result.packets_lost;
    if (!cfg_.retransmit ||
        net_->record(root).retries >= cfg_.max_retries) {
      finalize_unrecoverable(root, meas, result);
    } else {
      retry_queue_.push_back(id);
    }
  }
}

void Simulator::flush_retry_queue(SimResult& result) {
  if (retry_queue_.empty()) return;
  refresh_components();
  const FaultSet& faults = net_->faults();
  for (const PacketId id : retry_queue_) {
    const PacketRecord& rec = net_->record(id);
    const PacketId root = rec.retry_of >= 0 ? rec.retry_of : id;
    const bool meas = is_measured(root);
    // Endpoint health and connectivity re-checked against the
    // post-reconfiguration fault picture: a retry toward dead or
    // unreachable hardware is abandoned at the source.
    if (!faults.node_ok(rec.src) || !faults.node_ok(rec.dest) ||
        net_->node_live_killed(rec.src) || net_->node_live_killed(rec.dest) ||
        conn_comp_[static_cast<std::size_t>(rec.src)] !=
            conn_comp_[static_cast<std::size_t>(rec.dest)]) {
      finalize_unrecoverable(root, meas, result);
      continue;
    }
    const PacketId nid = net_->resend(id, now_);
    if (meas) {
      mark_measured(nid);
      ++result.packets_retransmitted;
    }
  }
  retry_queue_.clear();
}

bool Simulator::structured_kill(SimResult& result) {
  const std::vector<Network::BlockedChannel> chain = net_->blocked_chain();
  if (result.blocked_chain.empty()) {
    for (const Network::BlockedChannel& c : chain) {
      SimResult::BlockedChannelInfo info;
      info.node = c.node;
      info.port = c.port;
      info.vc = c.vc;
      info.packet = c.packet;
      result.blocked_chain.push_back(info);
    }
  }
  // Victim: the lowest packet id in the chain — deterministic, and killing
  // any one member breaks the cycle. Its buffers free hop by hop as the
  // poisoned flits drain, which restarts everyone behind it.
  PacketId victim = -1;
  for (const Network::BlockedChannel& c : chain) {
    if (c.packet < 0) continue;
    const PacketRecord& rec = net_->record(c.packet);
    if (rec.done() || rec.lost) continue;
    if (victim < 0 || c.packet < victim) victim = c.packet;
  }
  if (victim < 0) return false;
  net_->kill_packet(victim);
  ++result.worms_killed;
  return true;
}

void Simulator::capture_blocked_chain(SimResult& result) {
  if (!result.blocked_chain.empty()) return;
  for (const Network::BlockedChannel& c : net_->blocked_chain()) {
    SimResult::BlockedChannelInfo info;
    info.node = c.node;
    info.port = c.port;
    info.vc = c.vc;
    info.packet = c.packet;
    result.blocked_chain.push_back(info);
  }
}

void Simulator::finalize_unrecoverable(PacketId root, bool measured_root,
                                       SimResult& result) {
  static_cast<void>(root);
  if (measured_root) {
    ++result.packets_unrecoverable;
    --measured_outstanding_;
  }
}

bool Simulator::quiesce(Cycle limit) {
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  // With the lifecycle armed the stall watchdog victim-kills instead of
  // giving up: quiesce() must be able to empty a network whose unmeasured
  // worms are wedged (run() only guarantees the measured ones). Kills are
  // recorded into a scratch result — quiesce() has no metrics to report.
  SimResult scratch;
  for (Cycle c = 0; c < limit && !net_->idle(); ++c) {
    net_->step(now_++);
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) {
        if (lifecycle_ && structured_kill(scratch)) {
          stall = 0;
          continue;
        }
        return false;
      }
    } else {
      stall = 0;
      last_movement = moved;
    }
  }
  return net_->idle();
}

}  // namespace flexrouter
