#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "topology/graph_algo.hpp"

namespace flexrouter {

namespace {

/// Exact latency order statistics without retaining every sample: packet
/// latencies are integral cycle counts, so values below kRange live in a
/// fixed count table (one slot per cycle) and only the rare tail beyond it
/// is kept verbatim. percentile() reproduces the sorted-sample linear
/// interpolation bit for bit, at O(kRange) memory instead of O(packets).
class LatencyQuantiles {
 public:
  static constexpr std::int64_t kRange = 4096;

  void add(double x) {
    const double floor_x = std::floor(x);
    if (x >= 0.0 && x < static_cast<double>(kRange) && floor_x == x) {
      ++counts_[static_cast<std::size_t>(x)];
    } else {
      // Tail (or non-integral, which the simulator never produces): every
      // counted value is an integer < kRange, so keeping the outliers
      // sorted keeps the merged order trivial.
      FR_ASSERT_MSG(x >= static_cast<double>(kRange),
                    "negative or fractional latency sample");
      outliers_.push_back(x);
      outliers_sorted_ = false;
    }
    ++count_;
  }

  std::int64_t count() const { return count_; }

  /// p in [0, 100]; same rank + interpolation rule as sorting all samples.
  double percentile(double p) const {
    FR_REQUIRE(p >= 0.0 && p <= 100.0);
    FR_REQUIRE_MSG(count_ > 0, "percentile of empty latency set");
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    const auto i = static_cast<std::int64_t>(rank);
    const double frac = rank - static_cast<double>(i);
    if (i + 1 >= count_) return order_stat(count_ - 1);
    return order_stat(i) * (1.0 - frac) + order_stat(i + 1) * frac;
  }

 private:
  double order_stat(std::int64_t k) const {
    std::int64_t seen = 0;
    for (std::int64_t v = 0; v < kRange; ++v) {
      seen += counts_[static_cast<std::size_t>(v)];
      if (seen > k) return static_cast<double>(v);
    }
    if (!outliers_sorted_) {
      std::sort(outliers_.begin(), outliers_.end());
      outliers_sorted_ = true;
    }
    return outliers_[static_cast<std::size_t>(k - seen)];
  }

  std::int64_t counts_[kRange] = {};
  std::int64_t count_ = 0;
  mutable std::vector<double> outliers_;
  mutable bool outliers_sorted_ = true;
};

}  // namespace

std::string SimResult::to_string() const {
  std::ostringstream os;
  os << "delivered " << delivered_packets << "/" << injected_packets
     << " avg_lat=" << avg_latency << " p99=" << p99_latency
     << " thpt=" << throughput << " hops=" << avg_hops
     << " steps/dec=" << avg_decision_steps
     << " misrouted=" << misrouted_fraction * 100.0 << "%";
  if (deadlock_suspected) os << " [DEADLOCK SUSPECTED]";
  return os.str();
}

Simulator::Simulator(Network& net, TrafficPattern& traffic,
                     const SimConfig& cfg)
    : net_(&net), traffic_(&traffic), cfg_(cfg), rng_(cfg.seed) {}

void Simulator::inject_offered_load(bool measured) {
  const Topology& topo = net_->topology();
  const FaultSet& faults = net_->faults();
  // Healthy-component ids, recomputed once per fault epoch: the redraw
  // loop below asks "is dest reachable from n" per candidate, which as a
  // BFS (graph_algo connected()) dominated injection cost.
  if (!conn_valid_ || conn_epoch_ != faults.epoch()) {
    conn_comp_ = components(faults);
    conn_epoch_ = faults.epoch();
    conn_valid_ = true;
  }
  const bool bimodal =
      cfg_.long_packet_length > 0 && cfg_.long_packet_fraction > 0.0;
  const double mean_length =
      bimodal ? (1.0 - cfg_.long_packet_fraction) * cfg_.packet_length +
                    cfg_.long_packet_fraction * cfg_.long_packet_length
              : static_cast<double>(cfg_.packet_length);
  const double packet_prob = cfg_.injection_rate / mean_length;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (faults.node_faulty(n)) continue;
    if (!rng_.next_bool(packet_prob)) continue;
    const int length = bimodal && rng_.next_bool(cfg_.long_packet_fraction)
                           ? cfg_.long_packet_length
                           : cfg_.packet_length;
    // Redraw until the destination is healthy and connected (fault
    // assumption iii); give up after a few tries (pattern may be stuck on a
    // faulty fixed destination).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId dest = traffic_->dest(n, rng_);
      if (dest == n || !faults.node_ok(dest)) continue;
      if (conn_comp_[static_cast<std::size_t>(n)] !=
          conn_comp_[static_cast<std::size_t>(dest)])
        continue;
      const PacketId id = net_->send(n, dest, length, now_);
      if (measured) {
        measured_.push_back(id);
        if (measured_first_ < 0) measured_first_ = id;
        ++measured_outstanding_;
      }
      break;
    }
  }
}

void Simulator::count_measured_deliveries() {
  if (measured_first_ < 0) return;
  for (const PacketId id : net_->delivered_last_cycle())
    if (id >= measured_first_) --measured_outstanding_;
}

SimResult Simulator::run() {
  measured_.clear();
  measured_first_ = -1;
  measured_outstanding_ = 0;
  SimResult result;

  const RouterStats before = net_->aggregate_stats();

  for (Cycle c = 0; c < cfg_.warmup_cycles; ++c) {
    inject_offered_load(false);
    net_->step(now_++);
  }
  for (Cycle c = 0; c < cfg_.measure_cycles; ++c) {
    inject_offered_load(true);
    net_->step(now_++);
    count_measured_deliveries();
  }

  // Drain: no further injection; watch for stalls. The outstanding counter
  // (fed by delivered_last_cycle) replaces the per-cycle rescan of every
  // measured packet record.
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  Cycle drained = 0;
  while (measured_outstanding_ > 0) {
    if (drained++ > cfg_.drain_limit) {
      result.deadlock_suspected = true;
      break;
    }
    net_->step(now_++);
    count_measured_deliveries();
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) {
        result.deadlock_suspected = true;
        break;
      }
    } else {
      stall = 0;
      last_movement = moved;
    }
  }

  // Collect metrics over measured packets — a single pass: latency sum,
  // quantiles and the split by misroute mark all come from the same loop.
  LatencyQuantiles latency;
  StreamingStats hops, ratio, lat_misrouted, lat_direct;
  std::int64_t delivered = 0, misrouted = 0, delivered_flits = 0;
  double latency_sum = 0.0;
  for (const PacketId id : measured_) {
    const PacketRecord& rec = net_->record(id);
    if (!rec.done()) continue;
    ++delivered;
    delivered_flits += rec.length;
    const auto lat = static_cast<double>(rec.delivered - rec.created);
    latency.add(lat);
    latency_sum += lat;
    (rec.misrouted ? lat_misrouted : lat_direct).add(lat);
    hops.add(rec.hops);
    const int min_hops = net_->topology().distance(rec.src, rec.dest);
    if (min_hops > 0)
      ratio.add(static_cast<double>(rec.hops) / min_hops);
    misrouted += rec.misrouted ? 1 : 0;
  }

  result.injected_packets = static_cast<std::int64_t>(measured_.size());
  result.delivered_packets = delivered;
  if (delivered > 0) {
    result.avg_latency = latency_sum / static_cast<double>(delivered);
    result.p50_latency = latency.percentile(50);
    result.p99_latency = latency.percentile(99);
    result.avg_hops = hops.mean();
    result.min_hops_ratio = ratio.count() > 0 ? ratio.mean() : 0.0;
    result.misrouted_fraction =
        static_cast<double>(misrouted) / static_cast<double>(delivered);
    result.avg_latency_misrouted =
        lat_misrouted.count() > 0 ? lat_misrouted.mean() : 0.0;
    result.avg_latency_direct =
        lat_direct.count() > 0 ? lat_direct.mean() : 0.0;
  }
  const auto healthy_nodes = static_cast<double>(
      net_->topology().num_nodes() - net_->faults().num_node_faults());
  result.throughput =
      healthy_nodes > 0 && cfg_.measure_cycles > 0
          ? static_cast<double>(delivered_flits) /
                (healthy_nodes * static_cast<double>(cfg_.measure_cycles))
          : 0.0;

  const RouterStats after = net_->aggregate_stats();
  const std::int64_t decisions = after.packets_routed - before.packets_routed;
  result.avg_decision_steps =
      decisions > 0 ? static_cast<double>(after.decision_steps -
                                          before.decision_steps) /
                          static_cast<double>(decisions)
                    : 0.0;
  result.cycles_run = now_;
  return result;
}

bool Simulator::quiesce(Cycle limit) {
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  for (Cycle c = 0; c < limit && !net_->idle(); ++c) {
    net_->step(now_++);
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) return false;
    } else {
      stall = 0;
      last_movement = moved;
    }
  }
  return net_->idle();
}

}  // namespace flexrouter
