#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "topology/graph_algo.hpp"

namespace flexrouter {

std::string SimResult::to_string() const {
  std::ostringstream os;
  os << "delivered " << delivered_packets << "/" << injected_packets
     << " avg_lat=" << avg_latency << " p99=" << p99_latency
     << " thpt=" << throughput << " hops=" << avg_hops
     << " steps/dec=" << avg_decision_steps
     << " misrouted=" << misrouted_fraction * 100.0 << "%";
  if (deadlock_suspected) os << " [DEADLOCK SUSPECTED]";
  return os.str();
}

Simulator::Simulator(Network& net, TrafficPattern& traffic,
                     const SimConfig& cfg)
    : net_(&net), traffic_(&traffic), cfg_(cfg), rng_(cfg.seed) {}

void Simulator::inject_offered_load(bool measured) {
  const Topology& topo = net_->topology();
  const bool bimodal =
      cfg_.long_packet_length > 0 && cfg_.long_packet_fraction > 0.0;
  const double mean_length =
      bimodal ? (1.0 - cfg_.long_packet_fraction) * cfg_.packet_length +
                    cfg_.long_packet_fraction * cfg_.long_packet_length
              : static_cast<double>(cfg_.packet_length);
  const double packet_prob = cfg_.injection_rate / mean_length;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (net_->faults().node_faulty(n)) continue;
    if (!rng_.next_bool(packet_prob)) continue;
    const int length = bimodal && rng_.next_bool(cfg_.long_packet_fraction)
                           ? cfg_.long_packet_length
                           : cfg_.packet_length;
    // Redraw until the destination is healthy and connected (fault
    // assumption iii); give up after a few tries (pattern may be stuck on a
    // faulty fixed destination).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId dest = traffic_->dest(n, rng_);
      if (dest == n || !net_->faults().node_ok(dest)) continue;
      if (!connected(net_->faults(), n, dest)) continue;
      const PacketId id = net_->send(n, dest, length, now_);
      if (measured) measured_.push_back(id);
      break;
    }
  }
}

SimResult Simulator::run() {
  measured_.clear();
  SimResult result;

  const RouterStats before = net_->aggregate_stats();

  for (Cycle c = 0; c < cfg_.warmup_cycles; ++c) {
    inject_offered_load(false);
    net_->step(now_++);
  }
  for (Cycle c = 0; c < cfg_.measure_cycles; ++c) {
    inject_offered_load(true);
    net_->step(now_++);
  }

  // Drain: no further injection; watch for stalls.
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  Cycle drained = 0;
  auto all_measured_done = [&]() {
    return std::all_of(measured_.begin(), measured_.end(), [&](PacketId id) {
      return net_->record(id).done();
    });
  };
  while (!all_measured_done()) {
    if (drained++ > cfg_.drain_limit) {
      result.deadlock_suspected = true;
      break;
    }
    net_->step(now_++);
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) {
        result.deadlock_suspected = true;
        break;
      }
    } else {
      stall = 0;
      last_movement = moved;
    }
  }

  // Collect metrics over measured packets.
  Histogram latency(0, 4096, 256, /*keep_samples=*/true);
  StreamingStats hops, ratio, lat_misrouted, lat_direct;
  std::int64_t delivered = 0, misrouted = 0, delivered_flits = 0;
  for (const PacketId id : measured_) {
    const PacketRecord& rec = net_->record(id);
    if (!rec.done()) continue;
    ++delivered;
    delivered_flits += rec.length;
    const auto lat = static_cast<double>(rec.delivered - rec.created);
    latency.add(lat);
    (rec.misrouted ? lat_misrouted : lat_direct).add(lat);
    hops.add(rec.hops);
    const int min_hops = net_->topology().distance(rec.src, rec.dest);
    if (min_hops > 0)
      ratio.add(static_cast<double>(rec.hops) / min_hops);
    misrouted += rec.misrouted ? 1 : 0;
  }

  result.injected_packets = static_cast<std::int64_t>(measured_.size());
  result.delivered_packets = delivered;
  if (delivered > 0) {
    double sum = 0.0;
    for (const PacketId id : measured_) {
      const PacketRecord& rec = net_->record(id);
      if (rec.done()) sum += static_cast<double>(rec.delivered - rec.created);
    }
    result.avg_latency = sum / static_cast<double>(delivered);
    result.p50_latency = latency.percentile(50);
    result.p99_latency = latency.percentile(99);
    result.avg_hops = hops.mean();
    result.min_hops_ratio = ratio.count() > 0 ? ratio.mean() : 0.0;
    result.misrouted_fraction =
        static_cast<double>(misrouted) / static_cast<double>(delivered);
    result.avg_latency_misrouted =
        lat_misrouted.count() > 0 ? lat_misrouted.mean() : 0.0;
    result.avg_latency_direct =
        lat_direct.count() > 0 ? lat_direct.mean() : 0.0;
  }
  const auto healthy_nodes = static_cast<double>(
      net_->topology().num_nodes() - net_->faults().num_node_faults());
  result.throughput =
      healthy_nodes > 0 && cfg_.measure_cycles > 0
          ? static_cast<double>(delivered_flits) /
                (healthy_nodes * static_cast<double>(cfg_.measure_cycles))
          : 0.0;

  const RouterStats after = net_->aggregate_stats();
  const std::int64_t decisions = after.packets_routed - before.packets_routed;
  result.avg_decision_steps =
      decisions > 0 ? static_cast<double>(after.decision_steps -
                                          before.decision_steps) /
                          static_cast<double>(decisions)
                    : 0.0;
  result.cycles_run = now_;
  return result;
}

bool Simulator::quiesce(Cycle limit) {
  std::int64_t last_movement = net_->total_flit_movements();
  Cycle stall = 0;
  for (Cycle c = 0; c < limit && !net_->idle(); ++c) {
    net_->step(now_++);
    const std::int64_t moved = net_->total_flit_movements();
    if (moved == last_movement) {
      if (++stall > cfg_.watchdog_window) return false;
    } else {
      stall = 0;
      last_movement = moved;
    }
  }
  return net_->idle();
}

}  // namespace flexrouter
