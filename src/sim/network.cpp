#include "sim/network.hpp"

#include <algorithm>
#include <thread>

#include "topology/graph_algo.hpp"

namespace flexrouter {

Network::Network(const Topology& topo, RoutingAlgorithm& algo,
                 const NetworkConfig& cfg)
    : topo_(&topo),
      algo_(&algo),
      cfg_(cfg),
      faults_(topo),
      store_(cfg.expected_in_flight) {
  algo_->attach(topo, faults_);

  const auto n = static_cast<std::size_t>(topo.num_nodes());
  routers_.reserve(n);
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    routers_.push_back(
        std::make_unique<Router>(i, topo, faults_, algo, store_, cfg.router));
  injection_queues_.resize(n);
  injection_pending_.assign(n, 0);
  router_active_.assign(n, 0);
  live_killed_.assign(n, 0);
  pending_list_.reserve(n);
  active_list_.reserve(n);
  records_.reserve(cfg.expected_packets);
  // Step scratch, pre-sized unconditionally: deliveries per cycle cannot
  // exceed the node count, and one router ejects at most a handful of
  // flits per cycle. Sized to n so steady-state step() never allocates.
  delivered_last_cycle_.reserve(n);
  eject_scratch_.reserve(32);
  drop_scratch_.reserve(32);
  destroyed_scratch_.reserve(64);
  orphan_scratch_.reserve(16);
  lost_log_.reserve(64);
  for (auto& q : injection_queues_) q.reserve(16);

  // One Link object per directed channel.
  link_lookup_.assign(n * static_cast<std::size_t>(topo.degree()), -1);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (PortId p = 0; p < topo.degree(); ++p) {
      const NodeId v = topo.neighbor(u, p);
      if (v == kInvalidNode) continue;
      link_lookup_[static_cast<std::size_t>(u) *
                       static_cast<std::size_t>(topo.degree()) +
                   static_cast<std::size_t>(p)] =
          static_cast<std::ptrdiff_t>(links_.size());
      links_.push_back(
          std::make_unique<Link>(algo.num_vcs(), cfg.link_latency));
      link_sources_.push_back({u, p});
      link_dests_.push_back(v);
      Link* link = links_.back().get();
      routers_[static_cast<std::size_t>(u)]->connect_output(p, link);
      routers_[static_cast<std::size_t>(v)]->connect_input(
          topo.reverse_port(u, p), link);
    }
  }

  // Unified (sharded / event-driven) execution state. The legacy serial
  // path keeps running through the original members when this is off.
  unified_ = cfg_.shards > 1 || cfg_.event_driven;
  if (!unified_) return;
  FR_REQUIRE(cfg_.shards >= 1);
  plan_ = plan_shards(topo, cfg_.shards);
  shards_.resize(static_cast<std::size_t>(cfg_.shards));
  link_busy_.assign(links_.size(), 0);
  merge_pos_.assign(static_cast<std::size_t>(cfg_.shards), 0);
  for (int s = 0; s < cfg_.shards; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    const std::size_t sn = plan_.nodes[static_cast<std::size_t>(s)].size();
    sh.pending_list.reserve(sn);
    sh.active_list.reserve(sn);
    sh.busy_links.reserve(links_.size());
    sh.purge_drops.reserve(32);
    sh.purges.reserve(32);
    // One ejection per router per cycle bounds the eject buffer; drops are
    // rare (fault cycles only) and may grow outside the steady state.
    sh.ejects.reserve(sn + 8);
    sh.drops.reserve(32);
    sh.spans.reserve(sn);
  }
  // Boundary links (endpoints in different shards) stage their sends and
  // flush at the barrier, in ascending link id — the canonical order.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (plan_.shard(link_sources_[i].node) == plan_.shard(link_dests_[i]))
      continue;
    boundary_links_.push_back(static_cast<std::int32_t>(i));
    links_[i]->set_deferred(true);
  }
  // Per-node adjacency over in-shard links only (out-links first, then
  // in-links): the post-step busy-link discovery walk. Boundary links are
  // rescanned serially every cycle instead.
  const auto deg = static_cast<std::size_t>(topo.degree());
  adj_links_.assign(n * 2 * deg, -1);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (PortId p = 0; p < topo.degree(); ++p) {
      const NodeId v = topo.neighbor(u, p);
      if (v == kInvalidNode || plan_.shard(u) != plan_.shard(v)) continue;
      const std::size_t base = static_cast<std::size_t>(u) * 2 * deg;
      adj_links_[base + static_cast<std::size_t>(p)] =
          static_cast<std::int32_t>(link_index(u, p));
      adj_links_[base + deg + static_cast<std::size_t>(p)] =
          static_cast<std::int32_t>(link_index(v, topo.reverse_port(u, p)));
    }
  }
  int threads = cfg_.shard_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  threads = std::min(threads, cfg_.shards);
  if (threads > 1) pool_ = std::make_unique<ShardPool>(threads);
}

PacketId Network::send(NodeId src, NodeId dest, int length, Cycle now) {
  FR_REQUIRE(topo_->valid_node(src) && topo_->valid_node(dest));
  FR_REQUIRE_MSG(src != dest, "self-addressed packet");
  FR_REQUIRE_MSG(faults_.node_ok(src) && faults_.node_ok(dest),
                 "packet to/from a faulty node violates fault assumption iii");
  FR_REQUIRE_MSG(!node_live_killed(src) && !node_live_killed(dest),
                 "packet to/from a node killed live (diagnosis pending)");
  FR_REQUIRE(length >= 1);

  PacketRecord rec;
  rec.id = static_cast<PacketId>(records_.size());
  rec.src = src;
  rec.dest = dest;
  rec.length = length;
  rec.created = now;
  records_.push_back(rec);

  Header h;
  h.packet = rec.id;
  h.src = src;
  h.dest = dest;
  h.length = length;
  MessageInterface::seal(h);
  // One header per in-flight packet: the slot travels in the flit records
  // and is recycled when the tail flit ejects.
  const PacketSlot slot = store_.alloc(h);
  records_.back().slot = slot;

  // The ring's backing store is pooled, so pushing the whole flit train is
  // amortised one store per flit.
  auto& queue = injection_queues_[static_cast<std::size_t>(src)];
  queue.reserve(queue.size() + static_cast<std::size_t>(length));
  queue.push_back(make_head_flit(slot, length));
  for (int s = 1; s < length; ++s)
    queue.push_back(make_body_flit(slot, s, length));
  mark_pending(src);
  return rec.id;
}

PacketId Network::resend(PacketId prior, Cycle now) {
  FR_REQUIRE(prior >= 0 && static_cast<std::size_t>(prior) < records_.size());
  // Copy: send() below grows records_ and would invalidate a reference.
  const PacketRecord old = records_[static_cast<std::size_t>(prior)];
  FR_REQUIRE_MSG(old.lost, "resend of a packet that was not lost");
  const PacketId root_id = old.retry_of >= 0 ? old.retry_of : prior;
  const PacketId id = send(old.src, old.dest, old.length, now);
  records_[static_cast<std::size_t>(id)].retry_of = root_id;
  PacketRecord& root = records_[static_cast<std::size_t>(root_id)];
  ++root.retries;
  root.last_attempt = id;
  return id;
}

void Network::step(Cycle now) {
  if (unified_) {
    step_sharded(now);
  } else {
    step_serial(now);
  }
}

void Network::step_serial(Cycle now) {
  delivered_last_cycle_.clear();

  // Injection: at most one flit per node per cycle (local link bandwidth).
  // Only nodes with queued flits are visited, in ascending node order —
  // identical to a full scan. Sources whose queue empties drop off the
  // worklist; the rest compact in place (which keeps the list sorted).
  if (!pending_sorted_) {
    std::sort(pending_list_.begin(), pending_list_.end());
    pending_sorted_ = true;
  }
  const bool purge = store_.poisoned_live() > 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending_list_.size(); ++i) {
    const NodeId u = pending_list_[i];
    auto& queue = injection_queues_[static_cast<std::size_t>(u)];
    Router& r = *routers_[static_cast<std::size_t>(u)];
    // Source-side abort: queued flits of a truncated worm never enter the
    // network. The whole front run goes at once — dead flits consume no
    // injection bandwidth.
    if (purge) {
      while (!queue.empty() && store_.poisoned(queue.front().slot)) {
        const Flit f = queue.front();
        queue.pop_front();
        ++network_dropped_flits_;
        account_dropped_flit(f.slot);
      }
    }
    if (!queue.empty() && r.injection_space() > 0) {
      const Flit f = queue.front();
      queue.pop_front();
      if (f.head()) {
        const Header& hdr = store_.header(f.slot);
        records_[static_cast<std::size_t>(hdr.packet)].injected = now;
      }
      r.inject(f);
      activate(u);
    }
    if (queue.empty())
      injection_pending_[static_cast<std::size_t>(u)] = 0;
    else
      pending_list_[keep++] = u;
  }
  pending_list_.resize(keep);

  // Routers: walk the active worklist in ascending node order (identical
  // to the full scan it replaces). Routers that emptied drop off; the
  // link pass below re-activates any endpoint of a busy link.
  if (!active_sorted_) {
    std::sort(active_list_.begin(), active_list_.end());
    active_sorted_ = true;
  }
  std::size_t akeep = 0;
  for (std::size_t i = 0; i < active_list_.size(); ++i) {
    const NodeId u = active_list_[i];
    eject_scratch_.clear();
    drop_scratch_.clear();
    routers_[static_cast<std::size_t>(u)]->step(now, eject_scratch_,
                                               drop_scratch_);
    for (const Flit& f : drop_scratch_) account_dropped_flit(f.slot);
    for (const Flit& f : eject_scratch_) {
      // Resolve the slot to the full record at the network boundary — the
      // last reader before the slot is recycled (head == tail for length-1
      // packets, so read before release).
      const Header& hdr = store_.header(f.slot);
      PacketRecord& rec = records_[static_cast<std::size_t>(hdr.packet)];
      FR_ASSERT_MSG(rec.dest == u, "flit ejected at the wrong node");
      const bool last = store_.note_flit_gone(f.slot);
      if (store_.poisoned(f.slot)) {
        // The worm was truncated after part of it reached the destination;
        // what does arrive is discarded, not delivered.
        if (last) finalize_lost(f.slot);
        continue;
      }
      if (f.head()) {
        rec.hops = hdr.path_len;
        rec.misrouted = hdr.misrouted;
      }
      if (f.tail()) {
        FR_ASSERT_MSG(last, "tail ejected with flits unaccounted");
        rec.delivered = now;
        rec.slot = kInvalidPacketSlot;
        ++delivered_count_;
        delivered_last_cycle_.push_back(rec.id);
        store_.release(f.slot);
      }
    }
    if (routers_[static_cast<std::size_t>(u)]->empty())
      router_active_[static_cast<std::size_t>(u)] = 0;
    else
      active_list_[akeep++] = u;
  }
  active_list_.resize(akeep);

  // A busy link keeps both endpoints live for the next cycle: the receiver
  // must accept arriving flits, the sender must pick up returning credits
  // the cycle they land.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i]->idle()) continue;
    activate(link_sources_[i].node);
    activate(link_dests_[i]);
  }
}

void Network::shard_phase(int s, Cycle now, bool purge) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  sh.purge_drops.clear();
  sh.purges.clear();
  sh.ejects.clear();
  sh.drops.clear();
  sh.spans.clear();

  // Injection, exactly as step_serial — but loss accounting is deferred:
  // the shared store, lost log and counters mutate only in the epilogue,
  // in the serial path's node order.
  if (!sh.pending_sorted) {
    std::sort(sh.pending_list.begin(), sh.pending_list.end());
    sh.pending_sorted = true;
  }
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sh.pending_list.size(); ++i) {
    const NodeId u = sh.pending_list[i];
    auto& queue = injection_queues_[static_cast<std::size_t>(u)];
    Router& r = *routers_[static_cast<std::size_t>(u)];
    if (purge) {
      const auto begin = static_cast<std::uint32_t>(sh.purge_drops.size());
      while (!queue.empty() && store_.poisoned(queue.front().slot)) {
        sh.purge_drops.push_back(queue.front());
        queue.pop_front();
      }
      const auto end = static_cast<std::uint32_t>(sh.purge_drops.size());
      if (end != begin) sh.purges.push_back({u, begin, end});
    }
    if (!queue.empty() && r.injection_space() > 0) {
      const Flit f = queue.front();
      queue.pop_front();
      if (f.head()) {
        const Header& hdr = store_.header(f.slot);
        records_[static_cast<std::size_t>(hdr.packet)].injected = now;
      }
      r.inject(f);
      activate(u);
    }
    if (queue.empty())
      injection_pending_[static_cast<std::size_t>(u)] = 0;
    else
      sh.pending_list[keep++] = u;
  }
  sh.pending_list.resize(keep);

  // Routers, ascending node order within the shard. Ejects and drops are
  // recorded per router and replayed in the epilogue; everything a router
  // touches here is shard-local, a per-packet slot it exclusively holds
  // (the head flit lives in exactly one router), or a boundary link's
  // staging slot.
  if (!sh.active_sorted) {
    std::sort(sh.active_list.begin(), sh.active_list.end());
    sh.active_sorted = true;
  }
  const auto deg2 = 2 * static_cast<std::size_t>(topo_->degree());
  std::size_t akeep = 0;
  for (std::size_t i = 0; i < sh.active_list.size(); ++i) {
    const NodeId u = sh.active_list[i];
    Shard::RouterSpan span;
    span.node = u;
    span.eject_begin = static_cast<std::uint32_t>(sh.ejects.size());
    span.drop_begin = static_cast<std::uint32_t>(sh.drops.size());
    routers_[static_cast<std::size_t>(u)]->step(now, sh.ejects, sh.drops);
    span.eject_end = static_cast<std::uint32_t>(sh.ejects.size());
    span.drop_end = static_cast<std::uint32_t>(sh.drops.size());
    if (span.eject_end != span.eject_begin || span.drop_end != span.drop_begin)
      sh.spans.push_back(span);
    // Busy-link discovery: a link only turns busy through a send by an
    // adjacent stepped router, so walking the stepped routers' in-shard
    // adjacency finds every newly busy link.
    const std::int32_t* adj = &adj_links_[static_cast<std::size_t>(u) * deg2];
    for (std::size_t k = 0; k < deg2; ++k) {
      const std::int32_t l = adj[k];
      if (l >= 0 && !link_busy_[static_cast<std::size_t>(l)] &&
          !links_[static_cast<std::size_t>(l)]->idle())
        mark_link_busy(l);
    }
    if (routers_[static_cast<std::size_t>(u)]->empty())
      router_active_[static_cast<std::size_t>(u)] = 0;
    else
      sh.active_list[akeep++] = u;
  }
  sh.active_list.resize(akeep);

  // Busy in-shard links keep both endpoints live for the next cycle (both
  // endpoints are this shard's nodes); links that went idle drop off.
  std::size_t lkeep = 0;
  for (std::size_t i = 0; i < sh.busy_links.size(); ++i) {
    const std::int32_t l = sh.busy_links[i];
    if (links_[static_cast<std::size_t>(l)]->idle()) {
      link_busy_[static_cast<std::size_t>(l)] = 0;
      continue;
    }
    activate(link_sources_[static_cast<std::size_t>(l)].node);
    activate(link_dests_[static_cast<std::size_t>(l)]);
    sh.busy_links[lkeep++] = l;
  }
  sh.busy_links.resize(lkeep);
}

void Network::step_sharded(Cycle now) {
  delivered_last_cycle_.clear();
  const bool purge = store_.poisoned_live() > 0;

  const int num_shards = static_cast<int>(shards_.size());
  if (pool_ != nullptr) {
    struct Ctx {
      Network* net;
      Cycle now;
      bool purge;
    } ctx{this, now, purge};
    pool_->run(
        num_shards,
        [](void* c, int s) {
          auto* p = static_cast<Ctx*>(c);
          p->net->shard_phase(s, p->now, p->purge);
        },
        &ctx);
  } else {
    for (int s = 0; s < num_shards; ++s) shard_phase(s, now, purge);
  }

  // --- Serial epilogue -------------------------------------------------
  // 1. Cross-shard exchange: apply every boundary link's staged flit and
  // credits in ascending link id — the canonical order — and keep the
  // endpoints of non-idle boundary links on next cycle's active lists.
  // Link flushes touch no shared packet state, so their order relative to
  // the replays below is free; the replays themselves reproduce the serial
  // path's mutation order exactly.
  for (const std::int32_t l : boundary_links_) {
    Link& link = *links_[static_cast<std::size_t>(l)];
    link.flush_deferred(now);
    if (!link.idle()) {
      activate(link_sources_[static_cast<std::size_t>(l)].node);
      activate(link_dests_[static_cast<std::size_t>(l)]);
    }
  }

  // 2. Source-side purge accounting, ascending node order across shards
  // (each shard's groups are already ascending: k-way merge).
  if (purge) {
    std::fill(merge_pos_.begin(), merge_pos_.end(), 0);
    for (;;) {
      int best = -1;
      for (int s = 0; s < num_shards; ++s) {
        const auto& purges = shards_[static_cast<std::size_t>(s)].purges;
        const std::size_t pos = merge_pos_[static_cast<std::size_t>(s)];
        if (pos >= purges.size()) continue;
        if (best < 0 ||
            purges[pos].node <
                shards_[static_cast<std::size_t>(best)]
                    .purges[merge_pos_[static_cast<std::size_t>(best)]]
                    .node)
          best = s;
      }
      if (best < 0) break;
      Shard& sh = shards_[static_cast<std::size_t>(best)];
      const Shard::PurgeSpan& span =
          sh.purges[merge_pos_[static_cast<std::size_t>(best)]++];
      for (std::uint32_t i = span.begin; i < span.end; ++i) {
        ++network_dropped_flits_;
        account_dropped_flit(sh.purge_drops[i].slot);
      }
    }
  }

  // 3. Per-router drop/eject replay, ascending node order across shards —
  // byte for byte the serial path's accounting, so the lost log, the
  // delivery order and the store's free-list state match exactly.
  std::fill(merge_pos_.begin(), merge_pos_.end(), 0);
  for (;;) {
    int best = -1;
    for (int s = 0; s < num_shards; ++s) {
      const auto& spans = shards_[static_cast<std::size_t>(s)].spans;
      const std::size_t pos = merge_pos_[static_cast<std::size_t>(s)];
      if (pos >= spans.size()) continue;
      if (best < 0 ||
          spans[pos].node < shards_[static_cast<std::size_t>(best)]
                                .spans[merge_pos_[static_cast<std::size_t>(
                                    best)]]
                                .node)
        best = s;
    }
    if (best < 0) break;
    Shard& sh = shards_[static_cast<std::size_t>(best)];
    const Shard::RouterSpan& span =
        sh.spans[merge_pos_[static_cast<std::size_t>(best)]++];
    const NodeId u = span.node;
    for (std::uint32_t i = span.drop_begin; i < span.drop_end; ++i)
      account_dropped_flit(sh.drops[i].slot);
    for (std::uint32_t i = span.eject_begin; i < span.eject_end; ++i) {
      const Flit& f = sh.ejects[i];
      const Header& hdr = store_.header(f.slot);
      PacketRecord& rec = records_[static_cast<std::size_t>(hdr.packet)];
      FR_ASSERT_MSG(rec.dest == u, "flit ejected at the wrong node");
      const bool last = store_.note_flit_gone(f.slot);
      if (store_.poisoned(f.slot)) {
        if (last) finalize_lost(f.slot);
        continue;
      }
      if (f.head()) {
        rec.hops = hdr.path_len;
        rec.misrouted = hdr.misrouted;
      }
      if (f.tail()) {
        FR_ASSERT_MSG(last, "tail ejected with flits unaccounted");
        rec.delivered = now;
        rec.slot = kInvalidPacketSlot;
        ++delivered_count_;
        delivered_last_cycle_.push_back(rec.id);
        store_.release(f.slot);
      }
    }
  }
}

bool Network::inert() const {
  if (!unified_) return false;
  // Every router holding flits sits on an active list; every busy link
  // (boundary included) re-activates its endpoints each cycle; every
  // queued injection keeps its source on a pending list. Empty worklists
  // therefore certify that stepping would change nothing.
  for (const Shard& sh : shards_)
    if (!sh.pending_list.empty() || !sh.active_list.empty()) return false;
  return true;
}

void Network::skip_cycle() {
  FR_ASSERT_MSG(inert(), "skip_cycle on a non-inert network");
  delivered_last_cycle_.clear();
}

bool Network::idle() const {
  for (const auto& q : injection_queues_)
    if (!q.empty()) return false;
  for (const auto& r : routers_)
    if (!r->empty()) return false;
  for (const auto& l : links_)
    if (!l->idle()) return false;
  return true;
}

void Network::begin_fault_mutation() {
  FR_REQUIRE_MSG(idle(), "apply_faults requires a quiesced network "
                         "(fault assumption iv)");
}

int Network::finish_fault_mutation() {
  // A quiesced network has delivered every injected packet, so the store
  // must hold no live slots — flush() below cannot leak headers.
  FR_ASSERT_MSG(store_.live_count() == 0,
                "fault mutation with live packet slots");
  const int exchanges = algo_->reconfigure();
  for (const auto& r : routers_) r->flush();
  return exchanges;
}

void Network::poison_slot(PacketSlot s) {
  if (store_.live(s)) store_.poison(s);
}

void Network::account_dropped_flit(PacketSlot s) {
  if (store_.note_flit_gone(s)) finalize_lost(s);
}

void Network::finalize_lost(PacketSlot s) {
  const Header& h = store_.header(s);
  PacketRecord& rec = records_[static_cast<std::size_t>(h.packet)];
  FR_ASSERT_MSG(!rec.done(), "lost packet already delivered");
  FR_ASSERT_MSG(!rec.lost, "packet lost twice");
  rec.lost = true;
  rec.slot = kInvalidPacketSlot;
  lost_log_.push_back(rec.id);
  store_.release(s);
}

bool Network::projected_link_marked(NodeId node, PortId port) const {
  const NodeId peer = topo_->neighbor(node, port);
  FR_ASSERT(peer != kInvalidNode);
  const LinkRef key = node < peer
                          ? LinkRef{node, port}
                          : LinkRef{peer, topo_->reverse_port(node, port)};
  bool marked = faults_.link_marked_faulty(node, port);
  for (const PendingMutation& m : pending_mutations_) {
    if (m.op != PendingMutation::Op::KillLink &&
        m.op != PendingMutation::Op::RepairLink)
      continue;
    const NodeId mpeer = topo_->neighbor(m.node, m.port);
    const LinkRef mkey =
        m.node < mpeer ? LinkRef{m.node, m.port}
                       : LinkRef{mpeer, topo_->reverse_port(m.node, m.port)};
    if (mkey.node != key.node || mkey.port != key.port) continue;
    marked = m.op == PendingMutation::Op::KillLink;
  }
  return marked;
}

bool Network::projected_node_faulty(NodeId node) const {
  bool faulty = faults_.node_faulty(node);
  for (const PendingMutation& m : pending_mutations_) {
    if (m.node != node) continue;
    if (m.op == PendingMutation::Op::KillNode) faulty = true;
    if (m.op == PendingMutation::Op::RepairNode) faulty = false;
  }
  return faulty;
}

void Network::kill_link_live(NodeId node, PortId port) {
  FR_REQUIRE(topo_->valid_node(node) && topo_->valid_port(port));
  const NodeId peer = topo_->neighbor(node, port);
  FR_REQUIRE_MSG(peer != kInvalidNode, "live kill of an unconnected port");
  const std::ptrdiff_t fwd = link_index(node, port);
  const PortId rport = topo_->reverse_port(node, port);
  const std::ptrdiff_t rev = link_index(peer, rport);
  FR_ASSERT(fwd >= 0 && rev >= 0);
  const bool hw_dead = links_[static_cast<std::size_t>(fwd)]->failed() &&
                       links_[static_cast<std::size_t>(rev)]->failed();
  if (hw_dead && (projected_link_marked(node, port) ||
                  projected_node_faulty(node) || projected_node_faulty(peer)))
    return;  // already dead and staying dead (e.g. via a node kill)

  if (!hw_dead) {
    // Damage the data plane: both directions die together (assumption i).
    // Flits inside the channel are destroyed; worms committed through the
    // dead channel on either side are orphaned, so their upstream fragments
    // truncate hop by hop and their buffers/VCs/slots come back.
    destroyed_scratch_.clear();
    links_[static_cast<std::size_t>(fwd)]->fail(destroyed_scratch_);
    links_[static_cast<std::size_t>(rev)]->fail(destroyed_scratch_);
    orphan_scratch_.clear();
    routers_[static_cast<std::size_t>(node)]->kill_output_port(
        port, orphan_scratch_);
    routers_[static_cast<std::size_t>(peer)]->kill_output_port(
        rport, orphan_scratch_);
    for (const PacketSlot s : orphan_scratch_) poison_slot(s);
    for (const Flit& f : destroyed_scratch_) poison_slot(f.slot);
    for (const Flit& f : destroyed_scratch_) {
      ++network_dropped_flits_;
      account_dropped_flit(f.slot);
    }
  }
  pending_mutations_.push_back(
      {PendingMutation::Op::KillLink, node, port});
  activate(node);
  activate(peer);
}

void Network::kill_node_live(NodeId node) {
  FR_REQUIRE(topo_->valid_node(node));
  const bool hw_dead = live_killed_[static_cast<std::size_t>(node)] != 0;
  if (hw_dead && projected_node_faulty(node))
    return;  // already dead and staying dead
  if (!hw_dead) {
    live_killed_[static_cast<std::size_t>(node)] = 1;

    destroyed_scratch_.clear();
    orphan_scratch_.clear();
    // Every live packet sourced at or destined to the dead node is orphaned
    // (fault assumption iii no longer holds for it).
    store_.for_each_live([&](PacketSlot s, const Header& h) {
      if (h.src == node || h.dest == node) orphan_scratch_.push_back(s);
    });
    // Adjacent channels die with the node; neighbours' worms committed
    // toward it are orphaned.
    for (PortId p = 0; p < topo_->degree(); ++p) {
      const NodeId peer = topo_->neighbor(node, p);
      if (peer == kInvalidNode) continue;
      const PortId rport = topo_->reverse_port(node, p);
      links_[static_cast<std::size_t>(link_index(node, p))]->fail(
          destroyed_scratch_);
      links_[static_cast<std::size_t>(link_index(peer, rport))]->fail(
          destroyed_scratch_);
      routers_[static_cast<std::size_t>(peer)]->kill_output_port(
          rport, orphan_scratch_);
      activate(peer);
    }
    // The dead router's buffered flits and its local injection queue vanish.
    routers_[static_cast<std::size_t>(node)]->destroy_all_flits(
        destroyed_scratch_);
    auto& queue = injection_queues_[static_cast<std::size_t>(node)];
    while (!queue.empty()) {
      destroyed_scratch_.push_back(queue.front());
      queue.pop_front();
    }

    for (const PacketSlot s : orphan_scratch_) poison_slot(s);
    for (const Flit& f : destroyed_scratch_) poison_slot(f.slot);
    for (const Flit& f : destroyed_scratch_) {
      ++network_dropped_flits_;
      account_dropped_flit(f.slot);
    }
  }
  pending_mutations_.push_back(
      {PendingMutation::Op::KillNode, node, kInvalidPort});
}

bool Network::repair_link_live(NodeId node, PortId port) {
  FR_REQUIRE(topo_->valid_node(node) && topo_->valid_port(port));
  const NodeId peer = topo_->neighbor(node, port);
  FR_REQUIRE_MSG(peer != kInvalidNode, "live repair of an unconnected port");
  // Only a link that is (projected) marked faulty has anything to repair;
  // a channel dead solely because an endpoint node died is the node
  // repair's business.
  if (!projected_link_marked(node, port)) return false;
  pending_mutations_.push_back(
      {PendingMutation::Op::RepairLink, node, port});
  activate(node);
  activate(peer);
  return true;
}

bool Network::repair_node_live(NodeId node) {
  FR_REQUIRE(topo_->valid_node(node));
  if (!projected_node_faulty(node)) return false;
  pending_mutations_.push_back(
      {PendingMutation::Op::RepairNode, node, kInvalidPort});
  activate(node);
  return true;
}

void Network::degrade_link_live(NodeId node, PortId port, int factor) {
  FR_REQUIRE(topo_->valid_node(node) && topo_->valid_port(port));
  const NodeId peer = topo_->neighbor(node, port);
  FR_REQUIRE_MSG(peer != kInvalidNode, "degrade of an unconnected port");
  faults_.degrade_link(node, port, factor);
  const std::ptrdiff_t fwd = link_index(node, port);
  const std::ptrdiff_t rev =
      link_index(peer, topo_->reverse_port(node, port));
  FR_ASSERT(fwd >= 0 && rev >= 0);
  links_[static_cast<std::size_t>(fwd)]->set_throttle(factor);
  links_[static_cast<std::size_t>(rev)]->set_throttle(factor);
}

void Network::kill_packet(PacketId id) {
  FR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < records_.size());
  PacketRecord& rec = records_[static_cast<std::size_t>(id)];
  FR_REQUIRE_MSG(!rec.done() && !rec.lost, "kill of a finished packet");
  FR_ASSERT(rec.slot != kInvalidPacketSlot);
  store_.poison(rec.slot);
}

int Network::commit_pending_faults() {
  FR_REQUIRE_MSG(recovery_pending(), "no pending live damage to commit");
  // Undirected links whose hardware state may change at this commit: the
  // links named by link mutations plus every link adjacent to a node
  // mutation. Only these are re-synced below — links made faulty by a
  // static apply_faults call keep their hardware untouched, as before.
  std::vector<LinkRef> touched;
  for (const PendingMutation& m : pending_mutations_) {
    switch (m.op) {
      case PendingMutation::Op::KillLink:
      case PendingMutation::Op::RepairLink:
        touched.push_back({m.node, m.port});
        break;
      case PendingMutation::Op::KillNode:
      case PendingMutation::Op::RepairNode:
        for (PortId p = 0; p < topo_->degree(); ++p)
          if (topo_->neighbor(m.node, p) != kInvalidNode)
            touched.push_back({m.node, p});
        break;
    }
  }
  const int exchanges = apply_faults([this](FaultSet& f) {
    // Replay in arrival order: interleaved kill/repair sequences on one
    // resource resolve to the state of the last event.
    for (const PendingMutation& m : pending_mutations_) {
      switch (m.op) {
        case PendingMutation::Op::KillLink:
          if (!f.link_marked_faulty(m.node, m.port))
            f.fail_link(m.node, m.port);
          break;
        case PendingMutation::Op::KillNode:
          if (!f.node_faulty(m.node)) f.fail_node(m.node);
          break;
        case PendingMutation::Op::RepairLink:
          if (f.link_marked_faulty(m.node, m.port))
            f.repair_link(m.node, m.port);
          break;
        case PendingMutation::Op::RepairNode:
          if (f.node_faulty(m.node)) f.repair_node(m.node);
          live_killed_[static_cast<std::size_t>(m.node)] = 0;
          break;
      }
    }
    pending_mutations_.clear();
  });
  // Hardware sync for the touched links: a channel whose endpoints are
  // both healthy and which carries no faulty mark rejoins service (the
  // network is idle, so the shift registers are already empty). Channels
  // that remain dead keep their failed state from the live kill.
  for (const LinkRef& l : touched) {
    const NodeId peer = topo_->neighbor(l.node, l.port);
    if (faults_.link_marked_faulty(l.node, l.port) ||
        faults_.node_faulty(l.node) || faults_.node_faulty(peer))
      continue;
    links_[static_cast<std::size_t>(link_index(l.node, l.port))]->repair();
    links_[static_cast<std::size_t>(
               link_index(peer, topo_->reverse_port(l.node, l.port)))]
        ->repair();
  }
  return exchanges;
}

std::vector<Network::BlockedChannel> Network::blocked_channels() const {
  std::vector<BlockedChannel> out;
  std::vector<Router::StalledVc> scratch;
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    scratch.clear();
    routers_[static_cast<std::size_t>(n)]->collect_stalled(scratch);
    for (const Router::StalledVc& s : scratch) {
      BlockedChannel b;
      b.node = n;
      b.port = s.in_port;
      b.vc = s.in_vc;
      b.slot = s.slot;
      b.packet = store_.header(s.slot).packet;
      b.active = s.active;
      b.out_port = s.out_port;
      b.out_vc = s.out_vc;
      out.push_back(b);
    }
  }
  return out;
}

std::vector<Network::BlockedChannel> Network::blocked_chain() const {
  const std::vector<BlockedChannel> all = blocked_channels();
  std::vector<BlockedChannel> chain;
  if (all.empty()) return chain;
  auto find = [&all](NodeId n, PortId p, VcId v) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < all.size(); ++i)
      if (all[i].node == n && all[i].port == p && all[i].vc == v)
        return static_cast<std::ptrdiff_t>(i);
    return -1;
  };
  std::vector<char> visited(all.size(), 0);
  std::ptrdiff_t cur = 0;  // lowest blocked channel; deterministic start
  while (cur >= 0 && !visited[static_cast<std::size_t>(cur)]) {
    visited[static_cast<std::size_t>(cur)] = 1;
    const BlockedChannel& b = all[static_cast<std::size_t>(cur)];
    chain.push_back(b);
    if (!b.active ||
        b.out_port ==
            routers_[static_cast<std::size_t>(b.node)]->local_port())
      break;  // waiting on RC/VA or on the ejection sink: chain ends here
    const NodeId next = topo_->neighbor(b.node, b.out_port);
    if (next == kInvalidNode) break;
    cur = find(next, topo_->reverse_port(b.node, b.out_port), b.out_vc);
  }
  return chain;
}

const PacketRecord& Network::record(PacketId id) const {
  FR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < records_.size());
  return records_[static_cast<std::size_t>(id)];
}

std::size_t Network::in_flight() const {
  std::size_t pending = 0;
  for (const auto& q : injection_queues_) pending += q.size();
  for (const auto& rec : records_)
    if (rec.injected >= 0 && !rec.done() && !rec.lost) ++pending;
  return pending;
}

std::int64_t Network::total_flit_movements() const {
  // Dropped flits count as movement: truncation progress must reset the
  // deadlock watchdog's stall counter exactly like delivery progress.
  std::int64_t total = network_dropped_flits_;
  for (const auto& r : routers_)
    total += r->stats().flits_forwarded + r->stats().flits_ejected +
             r->stats().flits_dropped;
  return total;
}

std::vector<Network::LinkLoad> Network::link_utilization(Cycle elapsed) const {
  FR_REQUIRE(elapsed > 0);
  std::vector<LinkLoad> out;
  out.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkLoad l;
    l.from = link_sources_[i].node;
    l.port = link_sources_[i].port;
    l.utilization = static_cast<double>(links_[i]->info().flits_total()) /
                    static_cast<double>(elapsed);
    l.degrade = links_[i]->throttle();
    out.push_back(l);
  }
  std::sort(out.begin(), out.end(), [](const LinkLoad& a, const LinkLoad& b) {
    return a.utilization > b.utilization;
  });
  return out;
}

std::pair<double, double> Network::utilization_summary(Cycle elapsed) const {
  const auto loads = link_utilization(elapsed);
  if (loads.empty()) return {0.0, 0.0};
  double sum = 0.0;
  for (const LinkLoad& l : loads) sum += l.utilization;
  return {loads.front().utilization, sum / static_cast<double>(loads.size())};
}

RouterStats Network::aggregate_stats() const {
  RouterStats agg;
  for (const auto& r : routers_) {
    const RouterStats& s = r->stats();
    agg.flits_forwarded += s.flits_forwarded;
    agg.flits_ejected += s.flits_ejected;
    agg.flits_dropped += s.flits_dropped;
    agg.packets_routed += s.packets_routed;
    agg.decision_steps += s.decision_steps;
    agg.rc_no_candidates += s.rc_no_candidates;
    agg.va_retries += s.va_retries;
    agg.header_updates += s.header_updates;
  }
  return agg;
}

}  // namespace flexrouter
