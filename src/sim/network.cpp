#include "sim/network.hpp"

#include <algorithm>

#include "topology/graph_algo.hpp"

namespace flexrouter {

Network::Network(const Topology& topo, RoutingAlgorithm& algo,
                 const NetworkConfig& cfg)
    : topo_(&topo),
      algo_(&algo),
      cfg_(cfg),
      faults_(topo),
      store_(cfg.expected_in_flight) {
  algo_->attach(topo, faults_);

  const auto n = static_cast<std::size_t>(topo.num_nodes());
  routers_.reserve(n);
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    routers_.push_back(
        std::make_unique<Router>(i, topo, faults_, algo, store_, cfg.router));
  injection_queues_.resize(n);
  injection_pending_.assign(n, 0);
  router_active_.assign(n, 0);
  pending_list_.reserve(n);
  active_list_.reserve(n);
  records_.reserve(cfg.expected_packets);
  // Step scratch, pre-sized unconditionally: deliveries per cycle cannot
  // exceed the node count, and one router ejects at most a handful of
  // flits per cycle. Sized to n so steady-state step() never allocates.
  delivered_last_cycle_.reserve(n);
  eject_scratch_.reserve(32);
  for (auto& q : injection_queues_) q.reserve(16);

  // One Link object per directed channel.
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (PortId p = 0; p < topo.degree(); ++p) {
      const NodeId v = topo.neighbor(u, p);
      if (v == kInvalidNode) continue;
      links_.push_back(
          std::make_unique<Link>(algo.num_vcs(), cfg.link_latency));
      link_sources_.push_back({u, p});
      link_dests_.push_back(v);
      Link* link = links_.back().get();
      routers_[static_cast<std::size_t>(u)]->connect_output(p, link);
      routers_[static_cast<std::size_t>(v)]->connect_input(
          topo.reverse_port(u, p), link);
    }
  }
}

PacketId Network::send(NodeId src, NodeId dest, int length, Cycle now) {
  FR_REQUIRE(topo_->valid_node(src) && topo_->valid_node(dest));
  FR_REQUIRE_MSG(src != dest, "self-addressed packet");
  FR_REQUIRE_MSG(faults_.node_ok(src) && faults_.node_ok(dest),
                 "packet to/from a faulty node violates fault assumption iii");
  FR_REQUIRE(length >= 1);

  PacketRecord rec;
  rec.id = static_cast<PacketId>(records_.size());
  rec.src = src;
  rec.dest = dest;
  rec.length = length;
  rec.created = now;
  records_.push_back(rec);

  Header h;
  h.packet = rec.id;
  h.src = src;
  h.dest = dest;
  h.length = length;
  MessageInterface::seal(h);
  // One header per in-flight packet: the slot travels in the flit records
  // and is recycled when the tail flit ejects.
  const PacketSlot slot = store_.alloc(h);

  // The ring's backing store is pooled, so pushing the whole flit train is
  // amortised one store per flit.
  auto& queue = injection_queues_[static_cast<std::size_t>(src)];
  queue.reserve(queue.size() + static_cast<std::size_t>(length));
  queue.push_back(make_head_flit(slot, length));
  for (int s = 1; s < length; ++s)
    queue.push_back(make_body_flit(slot, s, length));
  if (!injection_pending_[static_cast<std::size_t>(src)]) {
    injection_pending_[static_cast<std::size_t>(src)] = 1;
    pending_list_.push_back(src);
    pending_sorted_ = false;
  }
  return rec.id;
}

void Network::step(Cycle now) {
  delivered_last_cycle_.clear();

  // Injection: at most one flit per node per cycle (local link bandwidth).
  // Only nodes with queued flits are visited, in ascending node order —
  // identical to a full scan. Sources whose queue empties drop off the
  // worklist; the rest compact in place (which keeps the list sorted).
  if (!pending_sorted_) {
    std::sort(pending_list_.begin(), pending_list_.end());
    pending_sorted_ = true;
  }
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending_list_.size(); ++i) {
    const NodeId u = pending_list_[i];
    auto& queue = injection_queues_[static_cast<std::size_t>(u)];
    Router& r = *routers_[static_cast<std::size_t>(u)];
    if (r.injection_space() > 0) {
      const Flit f = queue.front();
      queue.pop_front();
      if (f.head()) {
        const Header& hdr = store_.header(f.slot);
        records_[static_cast<std::size_t>(hdr.packet)].injected = now;
      }
      r.inject(f);
      activate(u);
    }
    if (queue.empty())
      injection_pending_[static_cast<std::size_t>(u)] = 0;
    else
      pending_list_[keep++] = u;
  }
  pending_list_.resize(keep);

  // Routers: walk the active worklist in ascending node order (identical
  // to the full scan it replaces). Routers that emptied drop off; the
  // link pass below re-activates any endpoint of a busy link.
  if (!active_sorted_) {
    std::sort(active_list_.begin(), active_list_.end());
    active_sorted_ = true;
  }
  std::size_t akeep = 0;
  for (std::size_t i = 0; i < active_list_.size(); ++i) {
    const NodeId u = active_list_[i];
    eject_scratch_.clear();
    routers_[static_cast<std::size_t>(u)]->step(now, eject_scratch_);
    for (const Flit& f : eject_scratch_) {
      // Resolve the slot to the full record at the network boundary — the
      // last reader before the slot is recycled (head == tail for length-1
      // packets, so read before release).
      const Header& hdr = store_.header(f.slot);
      PacketRecord& rec = records_[static_cast<std::size_t>(hdr.packet)];
      FR_ASSERT_MSG(rec.dest == u, "flit ejected at the wrong node");
      if (f.head()) {
        rec.hops = hdr.path_len;
        rec.misrouted = hdr.misrouted;
      }
      if (f.tail()) {
        rec.delivered = now;
        ++delivered_count_;
        delivered_last_cycle_.push_back(rec.id);
        store_.release(f.slot);
      }
    }
    if (routers_[static_cast<std::size_t>(u)]->empty())
      router_active_[static_cast<std::size_t>(u)] = 0;
    else
      active_list_[akeep++] = u;
  }
  active_list_.resize(akeep);

  // A busy link keeps both endpoints live for the next cycle: the receiver
  // must accept arriving flits, the sender must pick up returning credits
  // the cycle they land.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i]->idle()) continue;
    activate(link_sources_[i].node);
    activate(link_dests_[i]);
  }
}

bool Network::idle() const {
  for (const auto& q : injection_queues_)
    if (!q.empty()) return false;
  for (const auto& r : routers_)
    if (!r->empty()) return false;
  for (const auto& l : links_)
    if (!l->idle()) return false;
  return true;
}

void Network::begin_fault_mutation() {
  FR_REQUIRE_MSG(idle(), "apply_faults requires a quiesced network "
                         "(fault assumption iv)");
}

int Network::finish_fault_mutation() {
  // A quiesced network has delivered every injected packet, so the store
  // must hold no live slots — flush() below cannot leak headers.
  FR_ASSERT_MSG(store_.live_count() == 0,
                "fault mutation with live packet slots");
  const int exchanges = algo_->reconfigure();
  for (const auto& r : routers_) r->flush();
  return exchanges;
}

const PacketRecord& Network::record(PacketId id) const {
  FR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < records_.size());
  return records_[static_cast<std::size_t>(id)];
}

std::size_t Network::in_flight() const {
  std::size_t pending = 0;
  for (const auto& q : injection_queues_) pending += q.size();
  for (const auto& rec : records_)
    if (rec.injected >= 0 && !rec.done()) ++pending;
  return pending;
}

std::int64_t Network::total_flit_movements() const {
  std::int64_t total = 0;
  for (const auto& r : routers_)
    total += r->stats().flits_forwarded + r->stats().flits_ejected;
  return total;
}

std::vector<Network::LinkLoad> Network::link_utilization(Cycle elapsed) const {
  FR_REQUIRE(elapsed > 0);
  std::vector<LinkLoad> out;
  out.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkLoad l;
    l.from = link_sources_[i].node;
    l.port = link_sources_[i].port;
    l.utilization = static_cast<double>(links_[i]->info().flits_total()) /
                    static_cast<double>(elapsed);
    out.push_back(l);
  }
  std::sort(out.begin(), out.end(), [](const LinkLoad& a, const LinkLoad& b) {
    return a.utilization > b.utilization;
  });
  return out;
}

std::pair<double, double> Network::utilization_summary(Cycle elapsed) const {
  const auto loads = link_utilization(elapsed);
  if (loads.empty()) return {0.0, 0.0};
  double sum = 0.0;
  for (const LinkLoad& l : loads) sum += l.utilization;
  return {loads.front().utilization, sum / static_cast<double>(loads.size())};
}

RouterStats Network::aggregate_stats() const {
  RouterStats agg;
  for (const auto& r : routers_) {
    const RouterStats& s = r->stats();
    agg.flits_forwarded += s.flits_forwarded;
    agg.flits_ejected += s.flits_ejected;
    agg.packets_routed += s.packets_routed;
    agg.decision_steps += s.decision_steps;
    agg.rc_no_candidates += s.rc_no_candidates;
    agg.va_retries += s.va_retries;
    agg.header_updates += s.header_updates;
  }
  return agg;
}

}  // namespace flexrouter
