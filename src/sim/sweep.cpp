#include "sim/sweep.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace flexrouter {

std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_key) {
  // Two SplitMix64 steps over a golden-ratio spread of the key: the first
  // decorrelates (base, key) pairs, the second whitens. Avoids 0 so the
  // xoshiro reseed never sees an all-zero expansion input.
  SplitMix64 sm(base_seed ^ (0x9e3779b97f4a7c15ULL * (point_key + 1)));
  sm.next();
  const std::uint64_t s = sm.next();
  return s != 0 ? s : 0x5eed5eed5eed5eedULL;
}

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FLEXROUTER_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadBudget compose_thread_budget(int total_threads, std::size_t num_points) {
  const int total = resolve_threads(total_threads);
  if (num_points == 0) num_points = 1;
  ThreadBudget b;
  b.sweep_threads = num_points < static_cast<std::size_t>(total)
                        ? static_cast<int>(num_points)
                        : total;
  // Leftover capacity feeds each replica's shard pool; the floor division
  // guarantees sweep_threads * replica_threads <= total.
  b.replica_threads = total / b.sweep_threads;
  return b;
}

/// Simple MPMC task queue + fixed worker pool. Workers block on the
/// condvar; a batch is done when every task popped has also finished
/// (in_flight counts popped-but-running tasks, so completion, not just
/// queue emptiness, gates the caller).
struct SweepRunner::Pool {
  explicit Pool(int threads) {
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closing = true;
    }
    task_ready.notify_all();
    for (auto& w : workers) w.join();
  }

  void run_batch(const std::vector<std::function<void()>>& tasks) {
    {
      std::lock_guard<std::mutex> lock(mu);
      FR_REQUIRE_MSG(!batch_active, "SweepRunner::run is not reentrant");
      batch_active = true;
      remaining = static_cast<std::int64_t>(tasks.size());
      first_error = nullptr;
      for (const auto& t : tasks) queue.push_back(&t);
    }
    task_ready.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    batch_done.wait(lock, [this] { return remaining == 0; });
    batch_active = false;
    if (first_error) {
      std::exception_ptr e = first_error;
      first_error = nullptr;
      std::rethrow_exception(e);
    }
  }

  void worker_loop() {
    for (;;) {
      const std::function<void()>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        task_ready.wait(lock, [this] { return closing || !queue.empty(); });
        if (queue.empty()) return;  // closing
        task = queue.front();
        queue.pop_front();
      }
      try {
        (*task)();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0) batch_done.notify_all();
      }
    }
  }

  std::vector<std::thread> workers;
  std::deque<const std::function<void()>*> queue;
  std::mutex mu;
  std::condition_variable task_ready;
  std::condition_variable batch_done;
  std::int64_t remaining = 0;
  bool closing = false;
  bool batch_active = false;
  std::exception_ptr first_error;
};

SweepRunner::SweepRunner(const SweepOptions& opts)
    : pool_(std::make_unique<Pool>(resolve_threads(opts.num_threads))),
      base_seed_(opts.base_seed) {}

SweepRunner::~SweepRunner() = default;

int SweepRunner::num_threads() const {
  return static_cast<int>(pool_->workers.size());
}

std::vector<SimResult> SweepRunner::run(const std::vector<SweepPoint>& points) {
  std::vector<SimResult> results(points.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    FR_REQUIRE_MSG(static_cast<bool>(p.run), "SweepPoint without a run fn");
    const std::uint64_t key =
        p.key == SweepPoint::kAutoKey ? static_cast<std::uint64_t>(i) : p.key;
    const std::uint64_t seed = sweep_point_seed(base_seed_, key);
    SimResult* slot = &results[i];
    tasks.push_back([&p, seed, slot] { *slot = p.run(seed); });
  }
  pool_->run_batch(tasks);
  return results;
}

void SweepRunner::run_tasks(const std::vector<std::function<void()>>& tasks) {
  pool_->run_batch(tasks);
}

SweepReport summarize(const std::vector<SimResult>& results) {
  SweepReport rep;
  rep.points = static_cast<std::int64_t>(results.size());
  StreamingStats lat, p50, p99, thpt, hops, ratio, mis, steps;
  for (const SimResult& r : results) {
    rep.deadlocks += r.deadlock_suspected ? 1 : 0;
    rep.injected_packets += r.injected_packets;
    rep.delivered_packets += r.delivered_packets;
    lat.add(r.avg_latency);
    p50.add(r.p50_latency);
    p99.add(r.p99_latency);
    thpt.add(r.throughput);
    hops.add(r.avg_hops);
    ratio.add(r.min_hops_ratio);
    mis.add(r.misrouted_fraction);
    steps.add(r.avg_decision_steps);
  }
  const auto metric = [](const StreamingStats& s) {
    SweepReport::Metric m;
    if (s.count() > 0) {
      m.mean = s.mean();
      m.min = s.min();
      m.max = s.max();
    }
    return m;
  };
  rep.avg_latency = metric(lat);
  rep.p50_latency = metric(p50);
  rep.p99_latency = metric(p99);
  rep.throughput = metric(thpt);
  rep.avg_hops = metric(hops);
  rep.min_hops_ratio = metric(ratio);
  rep.misrouted_fraction = metric(mis);
  rep.avg_decision_steps = metric(steps);
  return rep;
}

std::string SweepReport::to_string() const {
  std::ostringstream os;
  os << "sweep: " << points << " points, " << delivered_packets << "/"
     << injected_packets << " delivered";
  if (deadlocks > 0) os << ", " << deadlocks << " deadlock-suspected";
  os << "; avg_lat mean=" << avg_latency.mean << " [" << avg_latency.min
     << ", " << avg_latency.max << "]"
     << "; thpt mean=" << throughput.mean << " [" << throughput.min << ", "
     << throughput.max << "]";
  return os.str();
}

namespace {

void json_metric(std::ostringstream& os, const std::string& pad,
                 const char* name, const SweepReport::Metric& m, bool last) {
  os << pad << "\"" << name << "\": {\"mean\": " << m.mean
     << ", \"min\": " << m.min << ", \"max\": " << m.max << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

std::string SweepReport::to_json(int indent) const {
  const std::string pad0(static_cast<std::size_t>(indent), ' ');
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  std::ostringstream os;
  os.precision(17);
  os << pad0 << "{\n";
  os << pad << "\"points\": " << points << ",\n";
  os << pad << "\"deadlocks\": " << deadlocks << ",\n";
  os << pad << "\"injected_packets\": " << injected_packets << ",\n";
  os << pad << "\"delivered_packets\": " << delivered_packets << ",\n";
  json_metric(os, pad, "avg_latency", avg_latency, false);
  json_metric(os, pad, "p50_latency", p50_latency, false);
  json_metric(os, pad, "p99_latency", p99_latency, false);
  json_metric(os, pad, "throughput", throughput, false);
  json_metric(os, pad, "avg_hops", avg_hops, false);
  json_metric(os, pad, "min_hops_ratio", min_hops_ratio, false);
  json_metric(os, pad, "misrouted_fraction", misrouted_fraction, false);
  json_metric(os, pad, "avg_decision_steps", avg_decision_steps, true);
  os << pad0 << "}";
  return os.str();
}

}  // namespace flexrouter
