// Persistent worker pool for the sharded network step. One pool per
// Network; the calling thread participates, so `threads` workers means
// `threads - 1` spawned std::threads. Each run() is one barrier epoch:
// shards are split across workers in fixed contiguous ranges (worker w
// gets shards [w*S/T, (w+1)*S/T)), every worker processes its range, and
// run() returns only after all ranges finished. The mutex/condvar
// handshake gives the serial epilogue a happens-before edge over every
// shard's writes, and the steady-state path performs no allocation (the
// job is a raw function pointer + context, not a std::function).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace flexrouter {

class ShardPool {
 public:
  using Job = void (*)(void* ctx, int shard);

  /// `threads` >= 1 total workers including the caller.
  explicit ShardPool(int threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int threads() const { return threads_; }

  /// Run job(ctx, s) for every shard s in [0, num_shards), split across
  /// the pool; blocks until all shards completed. The job must not throw.
  void run(int num_shards, Job job, void* ctx);

 private:
  void worker_loop(int worker);

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  int threads_;
  std::uint64_t epoch_ = 0;
  int outstanding_ = 0;
  bool stop_ = false;
  Job job_ = nullptr;
  void* ctx_ = nullptr;
  int num_shards_ = 0;
};

}  // namespace flexrouter
