// Open-loop network simulator: warmup / measurement / drain phases,
// Bernoulli packet injection, latency & throughput metrics, and a deadlock
// watchdog. This is the harness behind the latency–throughput figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/traffic.hpp"

namespace flexrouter {

struct SimConfig {
  /// Offered load in flits per node per cycle.
  double injection_rate = 0.1;
  int packet_length = 4;  // flits
  /// Bimodal traffic: a fraction of packets are long worms (0 disables).
  /// Wormhole networks are sensitive to the mix — long messages monopolise
  /// VC ownership, which the assigned-data adaptivity criterion exploits.
  int long_packet_length = 0;
  double long_packet_fraction = 0.0;
  Cycle warmup_cycles = 1000;
  Cycle measure_cycles = 2000;
  /// Give up draining after this many extra cycles (deadlock suspicion).
  Cycle drain_limit = 50000;
  /// Cycles without any flit movement (while work remains) that trigger the
  /// deadlock watchdog.
  Cycle watchdog_window = 2000;
  std::uint64_t seed = 1;
};

struct SimResult {
  std::int64_t injected_packets = 0;   // measured-window packets
  std::int64_t delivered_packets = 0;  // of the measured packets
  double avg_latency = 0.0;            // creation -> delivery, cycles
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double avg_hops = 0.0;
  double min_hops_ratio = 0.0;  // avg(hops / topological distance)
  double throughput = 0.0;      // delivered flits / node / cycle (measured)
  double misrouted_fraction = 0.0;
  /// Latency split by the header's misroute mark (0 when no such packets):
  /// the "double disadvantage" of Section 3 and what the SA priority boost
  /// buys back.
  double avg_latency_misrouted = 0.0;
  double avg_latency_direct = 0.0;
  double avg_decision_steps = 0.0;  // rule interpretations per RC decision
  bool deadlock_suspected = false;
  Cycle cycles_run = 0;

  std::string to_string() const;
};

class Simulator {
 public:
  Simulator(Network& net, TrafficPattern& traffic, const SimConfig& cfg);

  /// Run warmup + measurement + drain. May be called repeatedly; the clock
  /// keeps advancing (fault injection between runs via quiesce()).
  SimResult run();

  /// Drain the network completely (no new injection). Returns false if the
  /// watchdog fired before it emptied.
  bool quiesce(Cycle limit = 100000);

  Cycle now() const { return now_; }

 private:
  void inject_offered_load(bool measured);
  /// Decrement the outstanding-measured counter for every measured packet
  /// the last step() delivered, so the drain loop never rescans records.
  void count_measured_deliveries();

  Network* net_;
  TrafficPattern* traffic_;
  SimConfig cfg_;
  Rng rng_;
  Cycle now_ = 0;
  std::vector<PacketId> measured_;
  /// Measured packets sent but not yet delivered. Ids from measured_first_
  /// upward are exactly the measured packets (send order is sequential and
  /// the measurement window is the sole sender while it is open).
  PacketId measured_first_ = -1;
  std::int64_t measured_outstanding_ = 0;
  /// Healthy-component cache for fault assumption iii checks: one
  /// components() pass per fault epoch instead of a BFS per injected
  /// packet.
  std::vector<int> conn_comp_;
  std::uint64_t conn_epoch_ = 0;
  bool conn_valid_ = false;
};

}  // namespace flexrouter
