// Open-loop network simulator: warmup / measurement / drain phases,
// Bernoulli packet injection, latency & throughput metrics, and a deadlock
// watchdog. This is the harness behind the latency–throughput figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_schedule.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topology/shard_plan.hpp"

namespace flexrouter {

struct SimConfig {
  /// Offered load in flits per node per cycle.
  double injection_rate = 0.1;
  int packet_length = 4;  // flits
  /// Bimodal traffic: a fraction of packets are long worms (0 disables).
  /// Wormhole networks are sensitive to the mix — long messages monopolise
  /// VC ownership, which the assigned-data adaptivity criterion exploits.
  int long_packet_length = 0;
  double long_packet_fraction = 0.0;
  Cycle warmup_cycles = 1000;
  Cycle measure_cycles = 2000;
  /// Give up draining after this many extra cycles (deadlock suspicion).
  Cycle drain_limit = 50000;
  /// Cycles without any flit movement (while work remains) that trigger the
  /// deadlock watchdog.
  Cycle watchdog_window = 2000;
  std::uint64_t seed = 1;

  // --- Live fault lifecycle (set_fault_schedule) ------------------------
  /// Cycles between a fault event firing and the recovery controller
  /// opening the quiescent diagnosis phase (detection latency; the paper's
  /// Information Units report faults, the control plane reacts here).
  Cycle detection_delay = 0;
  /// Source-side abort-and-retransmit of lost packets, with a bounded
  /// per-packet retry budget; beyond it the packet counts unrecoverable.
  bool retransmit = true;
  int max_retries = 3;
  /// Upgrade the deadlock watchdog from "suspect and give up" to
  /// structured recovery: dump the blocked worm chain, kill the victim
  /// worm, retransmit it. Implied by a non-empty fault schedule.
  bool structured_watchdog = false;

  // --- Rolling rule-swap commits (RuleSwapPolicy::Rolling) --------------
  /// How many spatial shards a rolling swap drains sequentially. This is a
  /// property of the *swap*, deliberately decoupled from the execution
  /// shard count (NetworkConfig::shards) so results stay bit-identical
  /// whatever parallelism the run uses. Clamped to the node count.
  int rolling_shards = 8;

  // --- Event-driven idle skipping ---------------------------------------
  /// Skip network steps while the network is inert (no flits, no queued
  /// injections, no in-flight link traffic). Requires an event-capable
  /// network (NetworkConfig::event_driven or shards > 1). Results are
  /// bit-identical with skipping on or off: inert Normal-state cycles elide
  /// only the no-op step (the injection RNG still draws every cycle), and
  /// Detecting-state cycles — where no RNG is consumed — jump straight to
  /// the next scheduled event (detection deadline or fault firing).
  bool idle_skip = false;
};

struct SimResult {
  std::int64_t injected_packets = 0;   // measured-window packets
  std::int64_t delivered_packets = 0;  // of the measured packets
  double avg_latency = 0.0;            // creation -> delivery, cycles
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double avg_hops = 0.0;
  double min_hops_ratio = 0.0;  // avg(hops / topological distance)
  double throughput = 0.0;      // delivered flits / node / cycle (measured)
  double misrouted_fraction = 0.0;
  /// Latency split by the header's misroute mark (0 when no such packets):
  /// the "double disadvantage" of Section 3 and what the SA priority boost
  /// buys back.
  double avg_latency_misrouted = 0.0;
  double avg_latency_direct = 0.0;
  double avg_decision_steps = 0.0;  // rule interpretations per RC decision
  bool deadlock_suspected = false;
  Cycle cycles_run = 0;

  // --- Recovery metrics (live fault lifecycle; all zero/1.0 without one) —
  // counts below are over the measured window's packets.
  std::int64_t packets_lost = 0;           // attempts truncated or killed
  std::int64_t packets_retransmitted = 0;  // resends issued
  std::int64_t packets_unrecoverable = 0;  // originals abandoned for good
  int fault_events = 0;     // schedule events fired during this run
  int repair_events = 0;    // repair events that actually queued a revival
  int degrade_events = 0;   // fail-slow throttle changes applied
  int recovery_events = 0;  // diagnosis phases opened
  /// Total cycles from each fault event to the end of its quiescent
  /// diagnosis (recovery cycles per event = this / recovery_events).
  Cycle recovery_cycles = 0;
  /// Per-recovery durations (fault firing -> quiescent commit), one entry
  /// per completed diagnosis phase, in completion order — the raw samples
  /// behind availability / recovery-time distributions (p50/p99/max).
  /// Sums to recovery_cycles for phases completed inside this run.
  std::vector<Cycle> recovery_durations;
  /// Fraction of the measured window with injection open (not gated by a
  /// diagnosis phase).
  double availability = 1.0;
  int worms_killed = 0;  // watchdog victim kills
  int reconfig_exchanges = 0;

  // --- Rule hot-swap metrics (schedule_rule_swap; zero without one) -------
  int rule_swaps = 0;  // program swaps committed during this run
  /// Cycles injection was gated by a quiescent swap drain (immediate swaps
  /// gate nothing). The swap-downtime figure bench/rule_hotswap reports.
  Cycle swap_gated_cycles = 0;
  /// Node-cycles of gated injection — the per-node-resolution downtime
  /// figure that makes policies comparable: a quiescent drain gates every
  /// node for the whole window (cycles * num_nodes), a rolling commit only
  /// the current shard's uncommitted nodes each cycle. Immediate swaps
  /// gate nothing.
  Cycle swap_gated_node_cycles = 0;

  /// Deadlock-watchdog diagnostics: the blocked wait-for chain captured
  /// the first time the watchdog fired (empty if it never did). Channel
  /// order follows the chain: each entry waits on the next.
  struct BlockedChannelInfo {
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
    PacketId packet = -1;
  };
  std::vector<BlockedChannelInfo> blocked_chain;

  std::string to_string() const;
};

class Simulator {
 public:
  Simulator(Network& net, TrafficPattern& traffic, const SimConfig& cfg);

  /// Arm the live fault lifecycle: events fire at their absolute cycle
  /// (the simulator clock keeps advancing across run() calls). Enables
  /// the structured watchdog implicitly.
  void set_fault_schedule(const FaultSchedule& schedule);

  /// How a scheduled rule swap commits once its new image is ready.
  /// Immediate installs it at the next cycle boundary with zero gated
  /// cycles — sound for stateless programs, where every hop decides
  /// independently and deadlock freedom comes from the host escape layer.
  /// Quiescent runs the PR 5 gate→drain→swap→resume path: injection is
  /// gated until the network empties, then the image commits — the safe
  /// default for stateful programs (their per-node registers restart
  /// fresh, which no in-flight worm may straddle). Auto picks Immediate
  /// when static analysis proved the *new* program stateless, Quiescent
  /// otherwise. Rolling drains and commits one spatial shard
  /// (SimConfig::rolling_shards, plan_shards partition) at a time: only
  /// the currently-draining shard's uncommitted nodes stop injecting, and
  /// each flips to the new program the cycle it goes quiet — the rest of
  /// the fabric keeps running. The two programs coexist until the last
  /// shard commits, so Rolling is for swaps whose old and new programs
  /// may safely mix in flight (stateless programs under a shared escape
  /// layer — the same condition that makes Immediate sound, paid at
  /// per-shard granularity to bound how much of the fabric ever runs a
  /// half-installed rollout).
  enum class RuleSwapPolicy { Auto, Immediate, Quiescent, Rolling };

  /// Schedule a live rule-program swap at absolute cycle `at` (>= now).
  /// The network's routing algorithm must be a RuleDrivenRouting. Loading
  /// and compiling the new program (including the AOT table fill) is
  /// modeled off the router's critical path — the paper's reprogramming
  /// story: rule sets stream in while the old ones keep deciding — so
  /// only the commit costs simulated cycles, per the policy above. Swaps
  /// whose cycle falls beyond this run() stay armed for the next one.
  void schedule_rule_swap(Cycle at, std::string program_source,
                          RuleSwapPolicy policy = RuleSwapPolicy::Auto);

  /// Run warmup + measurement + drain. May be called repeatedly; the clock
  /// keeps advancing (fault injection between runs via quiesce()).
  SimResult run();

  /// Drain the network completely (no new injection). Returns false if the
  /// watchdog fired before it emptied.
  bool quiesce(Cycle limit = 100000);

  Cycle now() const { return now_; }

  /// Cumulative count of cycles whose network step was elided by idle
  /// skipping (a simulator-side perf counter; deliberately not part of
  /// SimResult, which stays bit-identical with skipping on or off).
  Cycle idle_cycles_skipped() const { return skipped_cycles_; }

 private:
  /// Recovery controller states. Normal: injection open. Detecting: a
  /// fault fired, damage is live, the detection latency is running.
  /// Draining: quiescent diagnosis phase — injection gated, survivors
  /// drain, watchdog kills stuck worms; when the network is idle the
  /// pending damage is committed (epoch bump + reconfigure) and injection
  /// reopens.
  enum class RecoveryState { Normal, Detecting, Draining };

  void inject_offered_load(bool measured);
  /// Longest jump from an inert Detecting-state cycle that crosses no
  /// schedule boundary: capped by the detection deadline, the next fault
  /// event, and the enclosing loop's remaining iterations. Always >= 1.
  Cycle jump_span(Cycle remaining) const;
  /// Decrement the outstanding-measured counter for every measured packet
  /// the last step() delivered, so the drain loop never rescans records.
  void count_measured_deliveries();
  void refresh_components();

  // Live fault lifecycle steps (all no-ops when idle / not armed).
  void fire_due_faults(SimResult& result);
  void update_recovery(SimResult& result);
  void process_losses(SimResult& result);
  void flush_retry_queue(SimResult& result);
  /// Stall watchdog for the quiescent diagnosis phase: worms wedged behind
  /// live damage are victim-killed so the drain can complete.
  void drain_watchdog_tick(SimResult& result);
  /// Diagnose the blocked chain, record it (first time), kill the victim
  /// worm. Returns false when there was nothing to kill.
  bool structured_kill(SimResult& result);
  void capture_blocked_chain(SimResult& result);
  void finalize_unrecoverable(PacketId root, bool measured_root,
                              SimResult& result);

  /// Start due swaps, run the quiescent gate, commit when allowed. Called
  /// at the top of every simulated cycle in all three phases; cheap no-op
  /// while nothing is due or draining.
  void process_rule_swaps(SimResult& result);
  bool swap_work_pending() const {
    return swap_draining_ || rolling_active_ || next_swap_ < swaps_.size();
  }
  /// True while node `n` must not inject: it belongs to the shard a
  /// rolling swap is currently draining and has not flipped yet.
  bool rolling_gated(NodeId n) const {
    return rolling_active_ &&
           rolling_plan_.shard_of[static_cast<std::size_t>(n)] ==
               static_cast<int>(rolling_shard_) &&
           rolling_committed_[static_cast<std::size_t>(n)] == 0;
  }

  void mark_measured(PacketId id) {
    if (static_cast<std::size_t>(id) >= measured_flag_.size())
      measured_flag_.resize(static_cast<std::size_t>(id) + 1, 0);
    measured_flag_[static_cast<std::size_t>(id)] = 1;
  }
  bool is_measured(PacketId id) const {
    return static_cast<std::size_t>(id) < measured_flag_.size() &&
           measured_flag_[static_cast<std::size_t>(id)] != 0;
  }

  Network* net_;
  TrafficPattern* traffic_;
  SimConfig cfg_;
  Rng rng_;
  Cycle now_ = 0;
  Cycle skipped_cycles_ = 0;
  std::vector<PacketId> measured_;
  /// Measured-packet flags by PacketId: originals from the measurement
  /// window plus their retransmissions. Replaces the old contiguous-id
  /// trick, which broke once resends interleave with measured sends.
  std::vector<char> measured_flag_;
  std::int64_t measured_outstanding_ = 0;
  /// Healthy-component cache for fault assumption iii checks: one
  /// components() pass per fault epoch instead of a BFS per injected
  /// packet.
  std::vector<int> conn_comp_;
  std::uint64_t conn_epoch_ = 0;
  bool conn_valid_ = false;

  /// Live fault lifecycle state.
  bool lifecycle_ = false;  // schedule set or structured watchdog enabled
  std::vector<FaultEvent> events_;
  std::size_t next_event_ = 0;
  RecoveryState rstate_ = RecoveryState::Normal;
  Cycle detect_at_ = 0;
  Cycle recovery_started_ = 0;
  std::size_t lost_cursor_ = 0;  // consumed prefix of Network::lost_log()
  std::vector<PacketId> retry_queue_;
  std::int64_t gated_measure_cycles_ = 0;
  /// Stall tracking for the Draining-phase watchdog (the post-measurement
  /// drain loop keeps its own local tracker).
  bool wd_armed_ = false;
  std::int64_t wd_last_movement_ = 0;
  Cycle wd_stall_ = 0;

  /// Scheduled rule swaps, sorted by cycle; the consumed prefix is
  /// [0, next_swap_). swap_draining_ marks an open quiescent gate.
  struct RuleSwap {
    Cycle at = 0;
    std::string source;
    RuleSwapPolicy policy = RuleSwapPolicy::Auto;
  };
  std::vector<RuleSwap> swaps_;
  std::size_t next_swap_ = 0;
  bool swap_draining_ = false;
  Cycle swap_started_ = 0;
  /// Rolling-commit state (RuleSwapPolicy::Rolling): shards are drained in
  /// plan order; a node flips the cycle it goes quiet. All mutation happens
  /// in the serial pre-step phase (process_rule_swaps).
  bool rolling_active_ = false;
  ShardPlan rolling_plan_;
  std::size_t rolling_shard_ = 0;
  std::vector<char> rolling_committed_;  // per node
};

}  // namespace flexrouter
