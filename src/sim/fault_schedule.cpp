#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace flexrouter {

void FaultSchedule::fail_link_at(Cycle at, NodeId node, PortId port) {
  FR_REQUIRE(at >= 0);
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::LinkFault;
  e.node = node;
  e.port = port;
  events_.push_back(e);
  sorted_ = false;
}

void FaultSchedule::fail_node_at(Cycle at, NodeId node) {
  FR_REQUIRE(at >= 0);
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::NodeFault;
  e.node = node;
  events_.push_back(e);
  sorted_ = false;
}

void FaultSchedule::add_random_link_faults(const Topology& topo,
                                           double mtbf_cycles, Cycle horizon,
                                           std::uint64_t seed) {
  FR_REQUIRE(mtbf_cycles > 0.0 && horizon >= 0);
  const std::vector<LinkRef> links = topo.undirected_links();
  FR_REQUIRE_MSG(!links.empty(), "topology has no links to fail");
  Rng rng(seed);
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival: -mtbf * ln(1 - U), U uniform in [0, 1).
    t += -mtbf_cycles * std::log(1.0 - rng.next_unit());
    const auto at = static_cast<Cycle>(t);
    if (at > horizon) break;
    const LinkRef l =
        links[rng.next_below(static_cast<std::uint64_t>(links.size()))];
    fail_link_at(at, l.node, l.port);
  }
}

void FaultSchedule::add_random_node_faults(const Topology& topo,
                                           double mtbf_cycles, Cycle horizon,
                                           std::uint64_t seed) {
  FR_REQUIRE(mtbf_cycles > 0.0 && horizon >= 0);
  FR_REQUIRE(topo.num_nodes() > 0);
  Rng rng(seed);
  double t = 0.0;
  for (;;) {
    t += -mtbf_cycles * std::log(1.0 - rng.next_unit());
    const auto at = static_cast<Cycle>(t);
    if (at > horizon) break;
    fail_node_at(
        at, static_cast<NodeId>(
                rng.next_below(static_cast<std::uint64_t>(topo.num_nodes()))));
  }
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    sorted_ = true;
  }
  return events_;
}

}  // namespace flexrouter
