#include "sim/fault_schedule.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace flexrouter {

namespace {

/// Exponential inter-arrival draw: -mean * ln(1 - U), U uniform in [0, 1).
/// SplitMix64 stream + det_log keep the materialised schedule bit-identical
/// across platforms and standard libraries (std::exponential_distribution
/// and libm's log are both unspecified at the last ulp).
double exp_draw(SplitMix64& sm, double mean) {
  return -mean * det_log(1.0 - sm.next_unit());
}

}  // namespace

void FaultSchedule::push(const FaultEvent& e) {
  FR_REQUIRE(e.at >= 0);
  events_.push_back(e);
  sorted_ = false;
}

void FaultSchedule::fail_link_at(Cycle at, NodeId node, PortId port) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::LinkFault;
  e.node = node;
  e.port = port;
  push(e);
}

void FaultSchedule::fail_node_at(Cycle at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::NodeFault;
  e.node = node;
  push(e);
}

void FaultSchedule::repair_link_at(Cycle at, NodeId node, PortId port) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::LinkRepair;
  e.node = node;
  e.port = port;
  push(e);
}

void FaultSchedule::repair_node_at(Cycle at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::NodeRepair;
  e.node = node;
  push(e);
}

void FaultSchedule::degrade_link_at(Cycle at, NodeId node, PortId port,
                                    int factor) {
  FR_REQUIRE_MSG(factor >= 1, "degradation factor must be >= 1");
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::LinkDegrade;
  e.node = node;
  e.port = port;
  e.factor = factor;
  push(e);
}

void FaultSchedule::add_random_link_faults(const Topology& topo,
                                           double mtbf_cycles, Cycle horizon,
                                           std::uint64_t seed) {
  FR_REQUIRE(mtbf_cycles > 0.0 && horizon >= 0);
  const std::vector<LinkRef> links = topo.undirected_links();
  FR_REQUIRE_MSG(!links.empty(), "topology has no links to fail");
  SplitMix64 sm(seed);
  double t = 0.0;
  for (;;) {
    t += exp_draw(sm, mtbf_cycles);
    const auto at = static_cast<Cycle>(t);
    if (at > horizon) break;
    const LinkRef l =
        links[sm.next_below(static_cast<std::uint64_t>(links.size()))];
    fail_link_at(at, l.node, l.port);
  }
}

void FaultSchedule::add_random_node_faults(const Topology& topo,
                                           double mtbf_cycles, Cycle horizon,
                                           std::uint64_t seed) {
  FR_REQUIRE(mtbf_cycles > 0.0 && horizon >= 0);
  FR_REQUIRE(topo.num_nodes() > 0);
  SplitMix64 sm(seed);
  double t = 0.0;
  for (;;) {
    t += exp_draw(sm, mtbf_cycles);
    const auto at = static_cast<Cycle>(t);
    if (at > horizon) break;
    fail_node_at(
        at, static_cast<NodeId>(
                sm.next_below(static_cast<std::uint64_t>(topo.num_nodes()))));
  }
}

void FaultSchedule::add_flapping_link(NodeId node, PortId port,
                                      Cycle first_down, Cycle horizon,
                                      double down_mean, double up_mean,
                                      std::uint64_t seed) {
  FR_REQUIRE(first_down >= 0 && horizon >= first_down);
  FR_REQUIRE_MSG(down_mean >= 1.0 && up_mean >= 1.0,
                 "flap dwell means must be >= 1 cycle");
  SplitMix64 sm(seed);
  double t = static_cast<double>(first_down);
  bool down = false;
  for (;;) {
    const auto at = static_cast<Cycle>(t);
    if (at > horizon) break;
    if (!down) {
      fail_link_at(at, node, port);
      // Dwell at least one cycle in each state so a kill and its repair
      // never share a firing cycle.
      t += 1.0 + exp_draw(sm, down_mean);
    } else {
      repair_link_at(at, node, port);
      t += 1.0 + exp_draw(sm, up_mean);
    }
    down = !down;
  }
}

int FaultSchedule::add_region_storm(const Topology& topo, Cycle at,
                                    const std::vector<int>& lo,
                                    const std::vector<int>& hi) {
  const auto* mesh = dynamic_cast<const Mesh*>(&topo);
  const auto* torus = mesh ? nullptr : dynamic_cast<const Torus*>(&topo);
  FR_REQUIRE_MSG(mesh != nullptr || torus != nullptr,
                 "region storm needs a k-ary Mesh or Torus, got '" +
                     topo.name() + "'");
  const int dims = mesh ? mesh->dims() : torus->dims();
  FR_REQUIRE_MSG(static_cast<int>(lo.size()) == dims &&
                     static_cast<int>(hi.size()) == dims,
                 "region storm on '" + topo.name() +
                     "' needs one [lo, hi] pair per dimension");
  for (int d = 0; d < dims; ++d) {
    const int radix = mesh ? mesh->radix(d) : torus->radix(d);
    FR_REQUIRE_MSG(lo[static_cast<std::size_t>(d)] >= 0 &&
                       hi[static_cast<std::size_t>(d)] < radix,
                   "region storm extends past the edge of '" + topo.name() +
                       "'");
    FR_REQUIRE_MSG(
        lo[static_cast<std::size_t>(d)] <= hi[static_cast<std::size_t>(d)],
        "region storm corners are inverted");
  }
  // Collect the region's nodes, then emit kills in ascending node order so
  // same-cycle storms fire deterministically whatever the corner walk.
  std::vector<NodeId> nodes;
  std::vector<int> c = lo;
  for (;;) {
    nodes.push_back(mesh ? mesh->node_at(c) : torus->node_at(c));
    int d = 0;
    for (; d < dims; ++d) {
      if (c[static_cast<std::size_t>(d)] < hi[static_cast<std::size_t>(d)]) {
        ++c[static_cast<std::size_t>(d)];
        break;
      }
      c[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];
    }
    if (d == dims) break;
  }
  std::sort(nodes.begin(), nodes.end());
  for (const NodeId n : nodes) fail_node_at(at, n);
  return static_cast<int>(nodes.size());
}

int FaultSchedule::add_subcube_storm(const Topology& topo, Cycle at,
                                     std::uint64_t mask, std::uint64_t value) {
  const auto* cube = dynamic_cast<const Hypercube*>(&topo);
  FR_REQUIRE_MSG(cube != nullptr,
                 "subcube storm needs a Hypercube, got '" + topo.name() + "'");
  const auto all =
      (std::uint64_t{1} << static_cast<unsigned>(cube->dimension())) - 1;
  FR_REQUIRE_MSG((mask & ~all) == 0 && (value & ~mask) == 0,
                 "subcube storm mask/value outside the cube's address bits");
  int killed = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if ((static_cast<std::uint64_t>(n) & mask) != value) continue;
    fail_node_at(at, n);
    ++killed;
  }
  return killed;
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    sorted_ = true;
  }
  return events_;
}

}  // namespace flexrouter
