// Deterministic parallel sweep engine.
//
// Every experiment in EXPERIMENTS.md walks a (fault set x offered load x
// seed) grid of completely independent simulations. SweepRunner runs those
// grid points on a fixed-size worker pool, one (Network, TrafficPattern,
// Simulator) replica per point, and guarantees the result vector is
// bit-identical to serial execution regardless of thread count or
// scheduling:
//
//   - each point's RNG seed is derived by a SplitMix64-style hash of
//     (base_seed, point key), never from shared generator state;
//   - a point builds all of its mutable objects (algorithm, traffic,
//     network, simulator) inside its own task — replicas share only
//     immutable data (the Topology);
//   - results land in an index-ordered vector slot, so completion order
//     is irrelevant.
//
// The determinism contract and the step pipeline it drives are documented
// in docs/SIMULATOR.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace flexrouter {

/// Derive the RNG seed for one grid point. Pure SplitMix64-style hash of
/// (base_seed, point_key): O(1), collision-resistant across neighbouring
/// keys, and independent of grid order or thread schedule.
std::uint64_t sweep_point_seed(std::uint64_t base_seed,
                               std::uint64_t point_key);

struct SweepOptions {
  /// Worker threads. 0 = the FLEXROUTER_THREADS environment variable if
  /// set, otherwise std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Base seed every per-point seed is derived from.
  std::uint64_t base_seed = 1;
};

/// One machine-wide thread budget split between sweep workers (replicas in
/// flight) and per-replica shard-pool threads, so replica parallelism and
/// sharded stepping compose without oversubscription: total running threads
/// stay <= sweep_threads * replica_threads <= budget. Replica-level
/// parallelism wins while grid points can absorb the budget (independent
/// replicas scale embarrassingly); only leftover capacity goes to the
/// shard pools. Thread counts never affect results, only wall clock.
struct ThreadBudget {
  int sweep_threads = 1;    // pass as SweepOptions::num_threads
  int replica_threads = 1;  // pass as NetworkConfig::shard_threads
};

/// `total_threads` <= 0 resolves like SweepOptions::num_threads (the
/// FLEXROUTER_THREADS environment variable, then hardware_concurrency).
ThreadBudget compose_thread_budget(int total_threads, std::size_t num_points);

/// One grid point: a closure that builds and runs its own replica. The
/// closure receives the derived per-point seed; it may ignore it when the
/// bench pins historical seeds (tables stay comparable across PRs).
struct SweepPoint {
  static constexpr std::uint64_t kAutoKey = ~0ULL;

  std::function<SimResult(std::uint64_t seed)> run;
  /// Seed-derivation identity. kAutoKey = use the point's grid index, so
  /// identical grids give identical seeds; set explicitly when the grid
  /// may be reordered but points must keep their seeds.
  std::uint64_t key = kAutoKey;
};

/// Fixed-size std::thread pool fed by a simple mutex+condvar MPMC queue.
/// Construction spawns the workers once; run()/run_tasks() may be called
/// repeatedly (batches do not overlap). Destruction joins.
class SweepRunner {
 public:
  explicit SweepRunner(const SweepOptions& opts = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int num_threads() const;
  std::uint64_t base_seed() const { return base_seed_; }

  /// Run every grid point; result i belongs to points[i] no matter which
  /// worker ran it or when. The first exception thrown by a point is
  /// rethrown here after the whole batch settles. A point that merely
  /// reports deadlock_suspected is a normal result — it never stalls the
  /// pool or its siblings.
  std::vector<SimResult> run(const std::vector<SweepPoint>& points);

  /// Generic fan-out for non-simulation grids (hardware-cost tables and
  /// the like): runs every task, blocks until all complete.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

 private:
  struct Pool;
  std::unique_ptr<Pool> pool_;
  std::uint64_t base_seed_;
};

/// Aggregate over an index-ordered result vector: mean/min/max per metric,
/// plus delivery and deadlock totals.
struct SweepReport {
  struct Metric {
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::int64_t points = 0;
  std::int64_t deadlocks = 0;
  std::int64_t injected_packets = 0;
  std::int64_t delivered_packets = 0;
  Metric avg_latency, p50_latency, p99_latency, throughput, avg_hops,
      min_hops_ratio, misrouted_fraction, avg_decision_steps;

  std::string to_string() const;
  /// JSON object (bench_util conventions: snake_case keys, one object per
  /// metric with mean/min/max), for inclusion in BENCH_*.json files.
  std::string to_json(int indent = 2) const;
};

SweepReport summarize(const std::vector<SimResult>& results);

}  // namespace flexrouter
