// Fault schedule for live fault injection (fault assumption v: faults may
// arrive while the network is operating).
//
// A schedule is a sorted list of timed events, built from explicit timed
// entries, seeded random generators, or both. It is fully materialised
// before the simulation starts — random arrivals are drawn up front from
// their own SplitMix64 stream — so replicas of a parallel sweep carry
// identical, self-contained schedules and the bit-identity contract of the
// sweep engine survives fault injection.
//
// Beyond fail-stop kills, the schedule models the chaos-campaign fault
// physics:
//   - repair events: a dead link or node comes back and is reintegrated
//     through the same detect -> drain -> reconfigure path a kill uses;
//   - flapping links: seeded on/off duty cycles materialised as
//     alternating kill/repair pairs;
//   - fail-slow links: a bandwidth-degradation factor throttling the
//     link's shift-register advance (a FaultSet dimension distinct from
//     dead/alive — no drain, no reconfiguration);
//   - correlated regional storms: a router with its links, mesh/torus
//     coordinate regions, hypercube subcubes — many kills at one cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topology/topology.hpp"

namespace flexrouter {

struct FaultEvent {
  enum class Kind {
    LinkFault,
    NodeFault,
    LinkRepair,
    NodeRepair,
    LinkDegrade,  // factor >= 2 throttles; factor == 1 restores full speed
  };

  Cycle at = 0;
  Kind kind = Kind::LinkFault;
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;  // link events only
  int factor = 1;              // LinkDegrade only
};

class FaultSchedule {
 public:
  /// Kill the (bidirectional) link at `node`/`port` at cycle `at`.
  void fail_link_at(Cycle at, NodeId node, PortId port);
  /// Kill `node` at cycle `at`.
  void fail_node_at(Cycle at, NodeId node);
  /// Repair the (bidirectional) link at `node`/`port` at cycle `at`. The
  /// channel rejoins service at the end of the quiescent diagnosis phase
  /// the event opens, not at the firing cycle.
  void repair_link_at(Cycle at, NodeId node, PortId port);
  /// Repair `node` at cycle `at` (same reintegration semantics).
  void repair_node_at(Cycle at, NodeId node);
  /// Degrade the (bidirectional) link to one flit per `factor` cycles
  /// (factor >= 2); factor == 1 restores full bandwidth. Applied live —
  /// fail-slow destroys nothing and needs no diagnosis phase.
  void degrade_link_at(Cycle at, NodeId node, PortId port, int factor);

  /// Seeded MTBF-style random link failures: inter-arrival times are
  /// exponential with mean `mtbf_cycles` (inverse-CDF on a SplitMix64
  /// stream with the bit-portable det_log, so the event stream is
  /// identical across standard libraries), each event kills a uniformly
  /// random undirected link of `topo`. Events beyond `horizon` are not
  /// generated. Deterministic for a given (topo, mtbf, horizon, seed).
  void add_random_link_faults(const Topology& topo, double mtbf_cycles,
                              Cycle horizon, std::uint64_t seed);
  /// Same arrival process, killing uniformly random nodes.
  void add_random_node_faults(const Topology& topo, double mtbf_cycles,
                              Cycle horizon, std::uint64_t seed);

  /// Intermittent (flapping) link: starting from `first_down`, the channel
  /// alternates dead and alive with exponential dwell times (mean
  /// `down_mean` dead, `up_mean` alive, both >= 1), materialised as
  /// kill/repair pairs until `horizon`. A schedule that ends inside a down
  /// window leaves the link dead. Deterministic per seed.
  void add_flapping_link(NodeId node, PortId port, Cycle first_down,
                         Cycle horizon, double down_mean, double up_mean,
                         std::uint64_t seed);

  /// Correlated regional storm at cycle `at`: kill every node in the
  /// axis-aligned hyper-rectangle [lo, hi] (inclusive, one coordinate per
  /// dimension) of a k-ary Mesh/Torus — rows, columns and blocks are all
  /// such regions. Contract error on non-grid topologies. Returns the
  /// number of node-kill events added (ascending node order).
  int add_region_storm(const Topology& topo, Cycle at,
                       const std::vector<int>& lo, const std::vector<int>& hi);
  /// Correlated subcube storm at cycle `at` on a hypercube of dimension d:
  /// kill every node whose address matches `value` on the bits set in
  /// `mask` — a (d - popcount(mask))-subcube. Returns the kill count.
  int add_subcube_storm(const Topology& topo, Cycle at, std::uint64_t mask,
                        std::uint64_t value);
  /// Router-and-its-links storm: the node dies at `at`, and with it every
  /// adjacent channel (a node kill already takes the links down; this
  /// spelling documents the regime).
  void add_router_storm(Cycle at, NodeId node) { fail_node_at(at, node); }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Events sorted by cycle (stable: same-cycle events keep insertion
  /// order, so mixed explicit/random schedules stay deterministic).
  const std::vector<FaultEvent>& events() const;

 private:
  void push(const FaultEvent& e);

  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace flexrouter
