// Fault schedule for live fault injection (fault assumption v: faults may
// arrive while the network is operating).
//
// A schedule is a sorted list of timed kill events, built from explicit
// timed entries, seeded MTBF-style random arrivals, or both. It is fully
// materialised before the simulation starts — random arrivals are drawn up
// front from their own Rng — so replicas of a parallel sweep carry
// identical, self-contained schedules and the bit-identity contract of the
// sweep engine survives fault injection.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topology/topology.hpp"

namespace flexrouter {

struct FaultEvent {
  enum class Kind { LinkFault, NodeFault };

  Cycle at = 0;
  Kind kind = Kind::LinkFault;
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;  // LinkFault only
};

class FaultSchedule {
 public:
  /// Kill the (bidirectional) link at `node`/`port` at cycle `at`.
  void fail_link_at(Cycle at, NodeId node, PortId port);
  /// Kill `node` at cycle `at`.
  void fail_node_at(Cycle at, NodeId node);

  /// Seeded MTBF-style random link failures: inter-arrival times are
  /// exponential with mean `mtbf_cycles`, each event kills a uniformly
  /// random undirected link of `topo`. Events beyond `horizon` are not
  /// generated. Deterministic for a given (topo, mtbf, horizon, seed).
  void add_random_link_faults(const Topology& topo, double mtbf_cycles,
                              Cycle horizon, std::uint64_t seed);
  /// Same arrival process, killing uniformly random nodes.
  void add_random_node_faults(const Topology& topo, double mtbf_cycles,
                              Cycle horizon, std::uint64_t seed);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Events sorted by cycle (stable: same-cycle events keep insertion
  /// order, so mixed explicit/random schedules stay deterministic).
  const std::vector<FaultEvent>& events() const;

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace flexrouter
