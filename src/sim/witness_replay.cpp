#include "sim/witness_replay.hpp"

#include <memory>
#include <sstream>

#include "common/assert.hpp"
#include "routing/rule_driven.hpp"
#include "ruleengine/parser.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

std::int64_t int_constant(const rules::Program& prog, const std::string& name,
                          std::int64_t fallback) {
  const auto it = prog.constants.find(name);
  if (it == prog.constants.end() || !it->second.is_int()) return fallback;
  return it->second.as_int();
}

std::unique_ptr<Topology> topology_of(const rules::Program& prog) {
  if (prog.constants.count("width") && prog.constants.count("height")) {
    const auto w = static_cast<int>(int_constant(prog, "width", 0));
    const auto h = static_cast<int>(int_constant(prog, "height", 0));
    if (w >= 2 && h >= 2) return std::make_unique<Mesh>(Mesh::two_d(w, h));
  }
  if (prog.constants.count("dim")) {
    const auto d = static_cast<int>(int_constant(prog, "dim", 0));
    if (d >= 1 && d <= 16) return std::make_unique<Hypercube>(d);
  }
  return nullptr;
}

}  // namespace

WitnessReplayResult replay_fault_pattern(
    const std::string& source, const ruleanalysis::FaultPattern& pattern,
    const WitnessReplayOptions& opts) {
  const rules::Program prog = rules::parse_program(source);
  const std::unique_ptr<Topology> topo = topology_of(prog);
  FR_REQUIRE_MSG(topo != nullptr,
                 "witness replay: program constants describe no topology");

  RuleDrivenRouting algo(source, opts.num_vcs, rules::ExecMode::Interpret,
                         opts.route_base, opts.escape_vc);
  Network net(*topo, algo);
  UniformTraffic traffic(*topo);
  SimConfig cfg;
  cfg.injection_rate = opts.injection_rate;
  cfg.packet_length = opts.packet_length;
  cfg.warmup_cycles = opts.warmup_cycles;
  cfg.measure_cycles = opts.measure_cycles;
  cfg.seed = opts.seed;
  FaultSchedule schedule;
  for (const LinkRef& l : pattern.links)
    schedule.fail_link_at(opts.fault_cycle, l.node, l.port);
  for (const NodeId n : pattern.nodes)
    schedule.fail_node_at(opts.fault_cycle, n);

  Simulator sim(net, traffic, cfg);
  sim.set_fault_schedule(schedule);

  WitnessReplayResult res;
  res.sim = sim.run();
  res.failure = res.sim.deadlock_suspected ||
                res.sim.packets_unrecoverable > 0 ||
                res.sim.delivered_packets < res.sim.injected_packets;
  std::ostringstream os;
  os << "replay of " << pattern.to_string() << " on " << prog.name << ": "
     << (res.failure ? "FAILED" : "delivered") << " ("
     << res.sim.delivered_packets << "/" << res.sim.injected_packets
     << " delivered, " << res.sim.packets_unrecoverable << " unrecoverable"
     << (res.sim.deadlock_suspected ? ", deadlock suspected" : "") << ")";
  res.summary = os.str();
  return res;
}

}  // namespace flexrouter
