// Synthetic traffic patterns (BookSim-style): destination generators used
// by the open-loop injection process.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "topology/topology.hpp"

namespace flexrouter {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  /// Destination for a packet sourced at `src`. May return src or a faulty
  /// node; the injector redraws/skips per fault assumption iii.
  virtual NodeId dest(NodeId src, Rng& rng) const = 0;
};

/// Uniformly random destination != src.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(const Topology& topo) : topo_(&topo) {}
  std::string name() const override { return "uniform"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  const Topology* topo_;
};

/// dest = bit-complement of src (worst-case distance on cubes/meshes).
class BitComplementTraffic final : public TrafficPattern {
 public:
  explicit BitComplementTraffic(const Topology& topo) : topo_(&topo) {}
  std::string name() const override { return "bitcomp"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  const Topology* topo_;
};

/// Matrix transpose on square 2-D meshes: (x, y) -> (y, x).
class TransposeTraffic final : public TrafficPattern {
 public:
  explicit TransposeTraffic(const Topology& topo);
  std::string name() const override { return "transpose"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  const Topology* topo_;
};

/// Tornado: half-way around each dimension (adversarial for minimal
/// adaptive routing on meshes/tori).
class TornadoTraffic final : public TrafficPattern {
 public:
  explicit TornadoTraffic(const Topology& topo);
  std::string name() const override { return "tornado"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  const Topology* topo_;
};

/// A fraction of traffic targets one hot node, the rest is uniform.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(const Topology& topo, NodeId hot, double fraction);
  std::string name() const override { return "hotspot"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  const Topology* topo_;
  NodeId hot_;
  double fraction_;
  UniformTraffic uniform_;
};

/// A fixed random permutation drawn once from a seed.
class PermutationTraffic final : public TrafficPattern {
 public:
  PermutationTraffic(const Topology& topo, std::uint64_t seed);
  std::string name() const override { return "permutation"; }
  NodeId dest(NodeId src, Rng& rng) const override;

 private:
  std::vector<NodeId> perm_;
};

/// Factory: "uniform", "bitcomp", "transpose", "tornado", "hotspot",
/// "permutation".
std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             const Topology& topo,
                                             std::uint64_t seed = 1);

}  // namespace flexrouter
