// Network assembly: routers wired by links per the topology, packet
// book-keeping, injection queues, and the quiescent fault-reconfiguration
// protocol of fault assumption iv.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "router/router.hpp"
#include "sim/traffic.hpp"

namespace flexrouter {

struct NetworkConfig {
  RouterConfig router;
  int link_latency = 1;
  /// Reserve hint: packets the workload expects to create (pre-sizes the
  /// record table so injection-heavy benches don't pay reallocation churn).
  std::size_t expected_packets = 0;
};

struct PacketRecord {
  PacketId id = -1;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  int length = 0;
  Cycle created = -1;
  Cycle injected = -1;   // head flit entered the source router
  Cycle delivered = -1;  // tail flit ejected at the destination
  int hops = 0;          // path length from the delivered header
  bool misrouted = false;

  bool done() const { return delivered >= 0; }
};

class Network {
 public:
  Network(const Topology& topo, RoutingAlgorithm& algo,
          const NetworkConfig& cfg = {});

  const Topology& topology() const { return *topo_; }
  FaultSet& faults() { return faults_; }
  const FaultSet& faults() const { return faults_; }
  RoutingAlgorithm& algorithm() { return *algo_; }

  /// Queue a packet for injection at `src`. Contract: src and dest healthy,
  /// src != dest (fault assumption iii is the caller's responsibility, but
  /// violations are rejected here).
  PacketId send(NodeId src, NodeId dest, int length, Cycle now);

  /// Advance one cycle.
  void step(Cycle now);

  /// No queued, buffered or in-flight flits anywhere.
  bool idle() const;

  /// Quiescent reconfiguration (fault assumption iv): the caller must have
  /// drained the network (idle()); `mutate` edits the fault set, then the
  /// routing algorithm recomputes its propagated state. Returns the number
  /// of neighbour exchanges the reconfiguration needed.
  int apply_faults(const std::function<void(FaultSet&)>& mutate);

  const PacketRecord& record(PacketId id) const;
  std::int64_t packets_created() const {
    return static_cast<std::int64_t>(records_.size());
  }
  std::int64_t packets_delivered() const { return delivered_count_; }
  std::size_t in_flight() const;

  /// Movement counter for the deadlock watchdog: total flits that crossed
  /// any crossbar this cycle history.
  std::int64_t total_flit_movements() const;

  Router& router(NodeId n) { return *routers_[static_cast<std::size_t>(n)]; }
  const Router& router(NodeId n) const {
    return *routers_[static_cast<std::size_t>(n)];
  }

  /// Aggregate router statistics over all nodes.
  RouterStats aggregate_stats() const;

  /// Per-directed-link utilisation: flits carried per elapsed cycle, from
  /// the link information units (Figure 3). Sorted descending.
  struct LinkLoad {
    NodeId from = kInvalidNode;
    PortId port = kInvalidPort;
    double utilization = 0.0;
  };
  std::vector<LinkLoad> link_utilization(Cycle elapsed) const;
  /// Summary over all links: (max, mean) utilisation.
  std::pair<double, double> utilization_summary(Cycle elapsed) const;

  /// Packets delivered during step(); cleared and refilled each cycle.
  const std::vector<PacketId>& delivered_last_cycle() const {
    return delivered_last_cycle_;
  }

 private:
  const Topology* topo_;
  RoutingAlgorithm* algo_;
  NetworkConfig cfg_;
  FaultSet faults_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkRef> link_sources_;  // parallel to links_
  std::vector<NodeId> link_dests_;     // parallel to links_
  std::vector<PacketRecord> records_;
  /// Flits waiting to enter each source router (one stream per node).
  std::vector<std::deque<Flit>> injection_queues_;
  /// Nodes with a non-empty injection queue (ascending = injection order).
  std::set<NodeId> pending_sources_;
  /// Routers that may do work this cycle: holding flits, injecting, or on
  /// either end of a busy link. Everything else is provably a no-op step.
  std::vector<char> router_active_;
  std::int64_t delivered_count_ = 0;
  std::vector<PacketId> delivered_last_cycle_;
  std::vector<Flit> eject_scratch_;
  std::vector<Flit> inject_scratch_;
};

}  // namespace flexrouter
