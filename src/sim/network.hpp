// Network assembly: routers wired by links per the topology, packet
// book-keeping, injection queues, and the quiescent fault-reconfiguration
// protocol of fault assumption iv.
#pragma once

#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "router/router.hpp"
#include "sim/shard_pool.hpp"
#include "topology/shard_plan.hpp"

namespace flexrouter {

struct NetworkConfig {
  RouterConfig router;
  int link_latency = 1;
  /// Reserve hint: packets the workload expects to create (pre-sizes the
  /// record table and the step scratch so injection-heavy benches don't pay
  /// reallocation churn).
  std::size_t expected_packets = 0;
  /// Reserve hint: peak simultaneously in-flight packets (pre-sizes the
  /// PacketStore slab). Zero lets the slab grow to the observed peak.
  std::size_t expected_in_flight = 0;
  /// Spatial shards stepped in parallel (plan_shards tiles the topology).
  /// 1 with event_driven off runs the original serial step, byte for byte;
  /// any other setting produces bit-identical SimResults — the cycle
  /// barrier exchanges cross-shard traffic in canonical link order.
  int shards = 1;
  /// Worker threads for the shard pool, including the stepping thread
  /// (0 = one per shard, capped at hardware_concurrency). Thread count
  /// never affects results, only wall clock.
  int shard_threads = 0;
  /// Event-driven bookkeeping at shards == 1: busy-link worklists replace
  /// the per-cycle full link scan, and the network can certify inert
  /// cycles for the simulator's idle skipping. Implied by shards > 1.
  bool event_driven = false;
};

struct PacketRecord {
  PacketId id = -1;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  int length = 0;
  Cycle created = -1;
  Cycle injected = -1;   // head flit entered the source router
  Cycle delivered = -1;  // tail flit ejected at the destination
  int hops = 0;          // path length from the delivered header
  bool misrouted = false;
  /// This attempt was truncated by a live fault (or killed by the
  /// watchdog) — its flits were dropped, it will never be delivered.
  bool lost = false;
  /// Retransmission chain: a resent attempt points at the original
  /// (root) packet; the root tracks how many retries it has consumed and
  /// which attempt is current. -1 on packets outside any chain.
  PacketId retry_of = -1;
  PacketId last_attempt = -1;
  int retries = 0;
  /// Store slot while the attempt is in flight (recycled afterwards).
  PacketSlot slot = kInvalidPacketSlot;

  bool done() const { return delivered >= 0; }
};

class Network {
 public:
  Network(const Topology& topo, RoutingAlgorithm& algo,
          const NetworkConfig& cfg = {});

  const Topology& topology() const { return *topo_; }
  FaultSet& faults() { return faults_; }
  const FaultSet& faults() const { return faults_; }
  RoutingAlgorithm& algorithm() { return *algo_; }
  /// Slab of in-flight packet headers; shared by every router of this
  /// network (replicas never share one).
  PacketStore& packet_store() { return store_; }
  const PacketStore& packet_store() const { return store_; }

  /// Queue a packet for injection at `src`. Contract: src and dest healthy,
  /// src != dest (fault assumption iii is the caller's responsibility, but
  /// violations are rejected here).
  PacketId send(NodeId src, NodeId dest, int length, Cycle now);

  /// Source-side abort-and-retransmit: queue a fresh copy of a lost
  /// attempt. The new packet joins the original's retry chain (retry_of /
  /// last_attempt / retries on the root record). The caller enforces the
  /// retry budget and endpoint health.
  PacketId resend(PacketId prior, Cycle now);

  /// Advance one cycle.
  void step(Cycle now);

  /// No queued, buffered or in-flight flits anywhere.
  bool idle() const;

  /// Event-driven mode is on (shards > 1 or cfg.event_driven): inert() and
  /// skip_cycle() are available.
  bool event_capable() const { return unified_; }
  /// Cheap certificate that step() would be a provable no-op this cycle:
  /// every worklist is empty — no queued injections, no buffered flits, no
  /// busy links (a busy link keeps both endpoints on the active list).
  /// O(shards), not O(nodes). Only meaningful in event-driven mode.
  bool inert() const;
  /// Stand-in for step() on an inert cycle: clears the delivered-last-cycle
  /// list (its only observable per-cycle effect) and nothing else.
  void skip_cycle();

  /// Quiescent reconfiguration (fault assumption iv): the caller must have
  /// drained the network (idle()); `mutate` edits the fault set, then the
  /// routing algorithm recomputes its propagated state. Returns the number
  /// of neighbour exchanges the reconfiguration needed. Accepts any
  /// callable taking FaultSet& (kept a template so this header needs no
  /// <functional>).
  template <typename Mutate>
  int apply_faults(Mutate&& mutate) {
    begin_fault_mutation();
    mutate(faults_);
    return finish_fault_mutation();
  }

  // --- Live fault lifecycle (fault assumption v) ------------------------
  //
  // A live kill damages the data plane immediately — the link's in-flight
  // flits are destroyed, worms cut by the fault are poisoned and truncate
  // hop by hop — but the control-plane mutation (FaultSet + reconfigure)
  // is deferred until the network has quiesced, matching the paper's
  // diagnosis phase (assumption iv): stateful routing algorithms keep
  // serving survivors against their current epoch in between.

  /// Kill the undirected channel between `node` and its neighbour on
  /// `port`, while traffic is in flight. Idempotent.
  void kill_link_live(NodeId node, PortId port);
  /// Kill `node` while traffic is in flight: its buffered flits and
  /// injection queue are destroyed, all adjacent channels die, and every
  /// live packet sourced at or destined to it is orphaned. Idempotent.
  void kill_node_live(NodeId node);
  /// Watchdog victim kill: orphan one in-flight worm so its buffers, VCs
  /// and crossbar claims free up hop by hop.
  void kill_packet(PacketId id);

  /// Queue a repair of the undirected channel at (node, port): the link
  /// hardware rejoins service at the next quiescent commit — repairs ride
  /// the same detect -> drain -> reconfigure path as kills, because
  /// re-adopting a channel also invalidates propagated routing state. The
  /// data plane is untouched until the commit. Returns false (and queues
  /// nothing) when the link is not projected dead at commit time, so
  /// repairing a healthy channel never opens a recovery window.
  bool repair_link_live(NodeId node, PortId port);
  /// Queue a node repair (same commit semantics). The node's injection
  /// queue and router return to service at the commit. Returns false when
  /// the node is not projected faulty.
  bool repair_node_live(NodeId node);
  /// Fail-slow: throttle both directions of the channel at (node, port) to
  /// one flit per `factor` cycles, effective immediately — degradation
  /// destroys nothing and needs no drain, no reconfiguration, no epoch
  /// bump. factor == 1 restores full bandwidth.
  void degrade_link_live(NodeId node, PortId port, int factor);

  /// Damage recorded by live kills (or queued repairs) but not yet applied
  /// to the FaultSet.
  bool recovery_pending() const { return !pending_mutations_.empty(); }
  /// Node killed live (dead hardware), whether or not the FaultSet has
  /// caught up yet. Traffic sources must treat it as faulty immediately.
  bool node_live_killed(NodeId node) const {
    return live_killed_[static_cast<std::size_t>(node)] != 0;
  }
  /// Quiescent diagnosis step: fold the pending live damage into the
  /// FaultSet (bumping the fault epoch) and reconfigure the routing
  /// algorithm. Requires idle(). Returns the neighbour-exchange count.
  int commit_pending_faults();

  /// Append-only log of lost packets (truncated or killed attempts), in
  /// the order their last flit left the network. The simulator consumes
  /// it with a monotonic cursor; it is never cleared mid-run.
  const std::vector<PacketId>& lost_log() const { return lost_log_; }
  std::int64_t packets_lost() const {
    return static_cast<std::int64_t>(lost_log_.size());
  }

  /// Watchdog diagnostics: every input VC in the network still holding
  /// flits (node, port, vc, front packet), ascending by node.
  struct BlockedChannel {
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
    PacketId packet = -1;
    PacketSlot slot = kInvalidPacketSlot;
    bool active = false;
    PortId out_port = kInvalidPort;
    VcId out_vc = kInvalidVc;
  };
  std::vector<BlockedChannel> blocked_channels() const;
  /// Follow the wait-for chain from the lowest blocked channel across
  /// routers (committed output -> downstream input VC) until it ends or
  /// closes a cycle; the classic deadlock dump. Deterministic.
  std::vector<BlockedChannel> blocked_chain() const;

  const PacketRecord& record(PacketId id) const;
  std::int64_t packets_created() const {
    return static_cast<std::int64_t>(records_.size());
  }
  std::int64_t packets_delivered() const { return delivered_count_; }
  std::size_t in_flight() const;

  /// Movement counter for the deadlock watchdog: total flits that crossed
  /// any crossbar this cycle history.
  std::int64_t total_flit_movements() const;

  Router& router(NodeId n) { return *routers_[static_cast<std::size_t>(n)]; }
  const Router& router(NodeId n) const {
    return *routers_[static_cast<std::size_t>(n)];
  }

  /// No flit buffered in this node's router and nothing queued for
  /// injection there. Sound commit point for a per-node program flip: a
  /// routing decision only ever happens for a flit buffered at the node,
  /// so a quiet node has no decision in flight — flits still on incoming
  /// links will be decided by whatever program is installed on arrival.
  bool node_quiet(NodeId n) const {
    return routers_[static_cast<std::size_t>(n)]->empty() &&
           injection_queues_[static_cast<std::size_t>(n)].empty();
  }

  /// Aggregate router statistics over all nodes.
  RouterStats aggregate_stats() const;

  /// Per-directed-link utilisation: flits carried per elapsed cycle, from
  /// the link information units (Figure 3). Sorted descending.
  struct LinkLoad {
    NodeId from = kInvalidNode;
    PortId port = kInvalidPort;
    double utilization = 0.0;
    /// Fail-slow factor from the link hardware (1 == full speed), so the
    /// load-measurement units expose degradation alongside utilisation.
    int degrade = 1;
  };
  std::vector<LinkLoad> link_utilization(Cycle elapsed) const;
  /// Summary over all links: (max, mean) utilisation.
  std::pair<double, double> utilization_summary(Cycle elapsed) const;

  /// Packets delivered during step(); cleared and refilled each cycle.
  const std::vector<PacketId>& delivered_last_cycle() const {
    return delivered_last_cycle_;
  }

 private:
  /// apply_faults helpers (out of line so the template stays minimal).
  void begin_fault_mutation();
  int finish_fault_mutation();

  /// One queued control-plane mutation. Kills and repairs are kept in one
  /// ordered list and replayed in arrival order at the commit, so
  /// interleaved kill/repair/kill sequences on one resource (a flapping
  /// link firing faster than the network can drain) resolve to the state
  /// of the *last* event, not whichever queue happened to replay second.
  struct PendingMutation {
    enum class Op { KillLink, KillNode, RepairLink, RepairNode };
    Op op;
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;  // link ops only
  };
  /// Projected control-plane state at the next commit: current FaultSet
  /// state with the pending mutation queue replayed on top. Used to decide
  /// whether a new kill/repair is a no-op.
  bool projected_link_marked(NodeId node, PortId port) const;
  bool projected_node_faulty(NodeId node) const;

  /// Index into links_ for the directed channel (u, p); kInvalidNode-free
  /// lookup built at construction. -1 when no link exists.
  std::ptrdiff_t link_index(NodeId u, PortId p) const {
    return link_lookup_[static_cast<std::size_t>(u) *
                            static_cast<std::size_t>(topo_->degree()) +
                        static_cast<std::size_t>(p)];
  }
  /// Poison a live slot (no-op when already poisoned / not live).
  void poison_slot(PacketSlot s);
  /// A flit left the network without being delivered: decrement the
  /// packet's flit budget and finalise the loss if it was the last.
  void account_dropped_flit(PacketSlot s);
  /// Last flit of a poisoned packet is gone: mark the record lost, append
  /// to the lost log, release the slot.
  void finalize_lost(PacketSlot s);

  /// Per-shard execution state. In unified (event-driven / sharded) mode
  /// each shard owns its slice of the worklists plus deferred-event buffers
  /// the serial epilogue replays in canonical order; the legacy members
  /// below stay in use only on the original serial path.
  struct Shard {
    std::vector<NodeId> pending_list;
    bool pending_sorted = true;
    std::vector<NodeId> active_list;
    bool active_sorted = true;
    /// Non-idle in-shard links (both endpoints in this shard).
    std::vector<std::int32_t> busy_links;
    /// Deferred source-side purge drops: flits in pop order, grouped per
    /// node (pending_list order is ascending, so groups are too).
    std::vector<Flit> purge_drops;
    struct PurgeSpan {
      NodeId node;
      std::uint32_t begin, end;
    };
    std::vector<PurgeSpan> purges;
    /// Deferred router step events, grouped per router in step order.
    std::vector<Flit> ejects;
    std::vector<Flit> drops;
    struct RouterSpan {
      NodeId node;
      std::uint32_t eject_begin, eject_end, drop_begin, drop_end;
    };
    std::vector<RouterSpan> spans;
  };

  void step_serial(Cycle now);
  void step_sharded(Cycle now);
  /// Parallel phase of one shard: inject, step routers, maintain the
  /// shard's busy-link list. Touches only shard-local state, per-node /
  /// per-packet slots of shared tables, and boundary-link staging slots.
  void shard_phase(int s, Cycle now, bool purge);

  /// Put `u` on the active worklist (idempotent via the flag). In unified
  /// mode the list is the owning shard's; callers inside shard_phase only
  /// ever activate nodes of their own shard.
  void activate(NodeId u) {
    if (!router_active_[static_cast<std::size_t>(u)]) {
      router_active_[static_cast<std::size_t>(u)] = 1;
      if (unified_) {
        Shard& sh = shards_[static_cast<std::size_t>(plan_.shard(u))];
        sh.active_list.push_back(u);
        sh.active_sorted = false;
      } else {
        active_list_.push_back(u);
        active_sorted_ = false;
      }
    }
  }

  /// Queue `u` on the injection worklist (idempotent via the flag).
  void mark_pending(NodeId u) {
    if (!injection_pending_[static_cast<std::size_t>(u)]) {
      injection_pending_[static_cast<std::size_t>(u)] = 1;
      if (unified_) {
        Shard& sh = shards_[static_cast<std::size_t>(plan_.shard(u))];
        sh.pending_list.push_back(u);
        sh.pending_sorted = false;
      } else {
        pending_list_.push_back(u);
        pending_sorted_ = false;
      }
    }
  }

  /// Track `link` on its shard's busy list (in-shard links only; boundary
  /// links are rescanned serially each cycle).
  void mark_link_busy(std::int32_t link) {
    if (link_busy_[static_cast<std::size_t>(link)]) return;
    link_busy_[static_cast<std::size_t>(link)] = 1;
    const int s = plan_.shard(link_sources_[static_cast<std::size_t>(link)]
                                  .node);
    shards_[static_cast<std::size_t>(s)].busy_links.push_back(link);
  }

  const Topology* topo_;
  RoutingAlgorithm* algo_;
  NetworkConfig cfg_;
  FaultSet faults_;
  PacketStore store_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkRef> link_sources_;  // parallel to links_
  std::vector<NodeId> link_dests_;     // parallel to links_
  std::vector<PacketRecord> records_;
  /// Flits waiting to enter each source router (one pooled ring per node).
  std::vector<RingBuffer<Flit>> injection_queues_;
  /// Worklist of nodes with a non-empty injection queue. Invariant:
  /// injection_pending_[u] != 0 iff u appears exactly once on the list;
  /// the list is sorted ascending unless pending_sorted_ is false (new
  /// sources appended since the last step).
  std::vector<char> injection_pending_;
  std::vector<NodeId> pending_list_;
  bool pending_sorted_ = true;
  /// Worklist of routers that may do work this cycle: holding flits,
  /// injecting, or on either end of a busy link. Everything else is
  /// provably a no-op step. Same invariant as the injection worklist:
  /// router_active_[u] != 0 iff u is on active_list_ exactly once.
  std::vector<char> router_active_;
  std::vector<NodeId> active_list_;
  bool active_sorted_ = true;
  std::int64_t delivered_count_ = 0;
  std::vector<PacketId> delivered_last_cycle_;
  std::vector<Flit> eject_scratch_;
  std::vector<Flit> drop_scratch_;
  /// Live-fault state: directed-link lookup, damage pending control-plane
  /// commit, loss accounting, and kill-time scratch.
  std::vector<std::ptrdiff_t> link_lookup_;  // (node, port) -> links_ index
  std::vector<PendingMutation> pending_mutations_;
  std::vector<char> live_killed_;  // per node
  std::vector<PacketId> lost_log_;
  std::int64_t network_dropped_flits_ = 0;  // destroyed in links/queues/nodes
  std::vector<Flit> destroyed_scratch_;
  std::vector<PacketSlot> orphan_scratch_;

  /// Unified (sharded / event-driven) execution state; unused on the
  /// legacy serial path so shards == 1 && !event_driven stays byte-exact.
  bool unified_ = false;
  ShardPlan plan_;
  std::vector<Shard> shards_;
  std::vector<char> link_busy_;  // in-shard links tracked on busy lists
  /// Directed links whose endpoints live in different shards, ascending by
  /// link id — the canonical cross-shard exchange order.
  std::vector<std::int32_t> boundary_links_;
  /// Adjacent link ids per node (out-links then in-links, -1 padded,
  /// 2*degree entries each): the post-step busy-link discovery walk.
  std::vector<std::int32_t> adj_links_;
  /// Per-shard merge cursors for the epilogue (scratch, reused).
  std::vector<std::size_t> merge_pos_;
  std::unique_ptr<ShardPool> pool_;
};

}  // namespace flexrouter
