// Fault pattern generators: random link/node faults that keep the healthy
// subgraph connected (so fault assumption iii can be met by any traffic),
// and the deterministic patterns of the paper's discussion — the Figure-2
// chain of faulty links near a border, and rectangular faulty blocks with
// concave pockets.
#pragma once

#include "common/rng.hpp"
#include "topology/fault_model.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {

/// Fail `count` random links; when `keep_connected`, candidate faults that
/// would disconnect healthy nodes are skipped. Returns the number actually
/// failed (may be < count if connectivity forbids more).
int inject_random_link_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected = true);

/// Fail `count` random nodes, keeping healthy nodes connected when asked.
int inject_random_node_faults(FaultSet& faults, int count, Rng& rng,
                              bool keep_connected = true);

/// Fail every node in the axis-aligned hyper-rectangle whose corners are
/// `lo` and `hi` (inclusive, one coordinate pair per dimension), on the
/// k-ary Mesh or Torus of any dimensionality underlying `faults`. Any other
/// topology is rejected with a contract error naming it — grid coordinates
/// are meaningless on, say, a hypercube. Returns the number of nodes newly
/// failed (nodes already faulty are counted once, not re-failed).
int inject_fault_region(FaultSet& faults, const std::vector<int>& lo,
                        const std::vector<int>& hi);

/// Figure 2: a chain of faulty links attached to the southern border,
/// severing columns `x` and `x+1` for rows 0..length-1. A router at the top
/// of the chain must know on which side a destination lies — the paper's
/// Omega(|F|) purposiveness argument.
void inject_figure2_chain(FaultSet& faults, const Mesh& mesh, int x,
                          int length);

/// A rectangular block of faulty nodes [x0, x1] x [y0, y1].
void inject_fault_block(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                        int x1, int y1);

/// An L-shaped (concave) fault pattern that NAFTA's convexification
/// completes: the block [x0,x1]x[y0,y1] minus its north-east quadrant.
void inject_concave_faults(FaultSet& faults, const Mesh& mesh, int x0, int y0,
                           int x1, int y1);

}  // namespace flexrouter
