// Dynamic cross-validation of static fault certificates.
//
// The k-fault certifier (ruleanalysis/fault_cert) emits concrete witness
// fault sets with its verdicts. This module closes the loop against the
// simulator: a statically-predicted blackhole/deadlock fault set is struck
// mid-run through a FaultSchedule and must reproduce as lost traffic, and a
// certified-safe fault set must keep a live run fully delivering. Tests use
// link-fault patterns for both directions — a node fault retires the
// traffic terminating at the dead router as unrecoverable by design, which
// would drown the signal.
#pragma once

#include <cstdint>
#include <string>

#include "ruleanalysis/fault_cert.hpp"
#include "sim/simulator.hpp"

namespace flexrouter {

struct WitnessReplayOptions {
  /// Router build of the replayed program (runnable CandEvents programs).
  int num_vcs = 1;
  VcId escape_vc = -1;
  std::string route_base = "route";

  double injection_rate = 0.05;
  int packet_length = 4;
  Cycle warmup_cycles = 300;
  Cycle measure_cycles = 1500;
  /// When the witness pattern's faults strike (inside the warmup window by
  /// default, so the whole measured window runs on the faulted fabric).
  Cycle fault_cycle = 200;
  std::uint64_t seed = 7;
};

struct WitnessReplayResult {
  SimResult sim;
  /// The static verdict reproduced dynamically: packets were abandoned for
  /// good, the deadlock watchdog fired, or measured traffic went
  /// undelivered past the drain window.
  bool failure = false;
  std::string summary;
};

/// Replay `pattern` under live uniform traffic: build the rule program as
/// an interpreted router on the topology its own constants describe, strike
/// the pattern's faults via the fault schedule, run, and report whether the
/// network failed. Throws only on programs without a known topology.
WitnessReplayResult replay_fault_pattern(
    const std::string& source, const ruleanalysis::FaultPattern& pattern,
    const WitnessReplayOptions& opts = {});

}  // namespace flexrouter
