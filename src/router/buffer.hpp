// Per-virtual-channel input FIFO with bounded depth. The buffers "include
// the interface to the physical link and handle errors on the data link
// layer" (Section 4.1); occupancy doubles as the local load measure that
// Information Units report.
//
// Backed by a pooled ring (common/ring_buffer.hpp) reserved to `depth` at
// construction: the credit protocol guarantees push() is never called on a
// full buffer, so the ring never regrows and steady-state push/pop touch
// no heap — flit records are 8-byte PODs moving through a fixed array.
#pragma once

#include "common/ring_buffer.hpp"
#include "router/flit.hpp"

namespace flexrouter {

class FlitBuffer {
 public:
  explicit FlitBuffer(int depth) : depth_(depth), fifo_(
      static_cast<std::size_t>(depth)) {
    FR_REQUIRE_MSG(depth >= 1, "flit buffer needs depth >= 1");
  }

  bool empty() const { return fifo_.empty(); }
  bool full() const { return static_cast<int>(fifo_.size()) >= depth_; }
  int size() const { return static_cast<int>(fifo_.size()); }
  int depth() const { return depth_; }
  int free_slots() const { return depth_ - size(); }

  /// Contract: not full.
  void push(const Flit& f) {
    FR_REQUIRE_MSG(!full(), "flit buffer overflow (credit protocol violated)");
    fifo_.push_back(f);
  }

  /// Contract: not empty.
  const Flit& front() const {
    FR_REQUIRE(!empty());
    return fifo_.front();
  }

  Flit pop() {
    FR_REQUIRE(!empty());
    const Flit f = fifo_.front();
    fifo_.pop_front();
    return f;
  }

 private:
  int depth_;
  RingBuffer<Flit> fifo_;
};

}  // namespace flexrouter
