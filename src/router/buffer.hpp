// Per-virtual-channel input FIFO with bounded depth. The buffers "include
// the interface to the physical link and handle errors on the data link
// layer" (Section 4.1); occupancy doubles as the local load measure that
// Information Units report.
#pragma once

#include <deque>

#include "router/flit.hpp"

namespace flexrouter {

class FlitBuffer {
 public:
  explicit FlitBuffer(int depth);

  bool empty() const { return fifo_.empty(); }
  bool full() const { return static_cast<int>(fifo_.size()) >= depth_; }
  int size() const { return static_cast<int>(fifo_.size()); }
  int depth() const { return depth_; }
  int free_slots() const { return depth_ - size(); }

  /// Contract: not full.
  void push(const Flit& f);
  /// Contract: not empty.
  const Flit& front() const;
  Flit pop();

 private:
  int depth_;
  std::deque<Flit> fifo_;
};

}  // namespace flexrouter
