// Connection Unit (Figure 3): the crossbar connecting input to output ports.
// It switches at most one flit per input port and one per output port per
// cycle; this class tracks per-cycle port usage and cumulative traversal
// statistics for the switch-allocation stage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace flexrouter {

class Crossbar {
 public:
  Crossbar(int num_inputs, int num_outputs);

  /// Start a new cycle: all ports become available.
  void begin_cycle();

  bool input_free(PortId in) const;
  bool output_free(PortId out) const;

  /// Reserve the path in -> out for this cycle.
  /// Contract: both ports are free.
  void connect(PortId in, PortId out);

  std::int64_t total_traversals() const { return traversals_; }
  int num_inputs() const { return static_cast<int>(in_used_.size()); }
  int num_outputs() const { return static_cast<int>(out_used_.size()); }

 private:
  std::vector<char> in_used_;
  std::vector<char> out_used_;
  std::int64_t traversals_ = 0;
};

}  // namespace flexrouter
