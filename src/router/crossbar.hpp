// Connection Unit (Figure 3): the crossbar connecting input to output ports.
// It switches at most one flit per input port and one per output port per
// cycle; this class tracks per-cycle port usage and cumulative traversal
// statistics for the switch-allocation stage.
//
// Port usage is a pair of bitmasks: switch allocation probes input_free /
// output_free for every candidate every cycle, so the per-cycle state must
// be register-resident — begin_cycle is two stores, a probe is one bit test.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace flexrouter {

class Crossbar {
 public:
  /// Bitmask port tracking caps the radix; real routers here are degree+1.
  static constexpr int kMaxPorts = 64;

  Crossbar(int num_inputs, int num_outputs)
      : num_inputs_(num_inputs), num_outputs_(num_outputs) {
    FR_REQUIRE(num_inputs >= 1 && num_inputs <= kMaxPorts);
    FR_REQUIRE(num_outputs >= 1 && num_outputs <= kMaxPorts);
  }

  /// Start a new cycle: all ports become available.
  void begin_cycle() {
    in_used_ = 0;
    out_used_ = 0;
  }

  bool input_free(PortId in) const {
    FR_REQUIRE(in >= 0 && in < num_inputs_);
    return ((in_used_ >> static_cast<unsigned>(in)) & 1u) == 0;
  }
  bool output_free(PortId out) const {
    FR_REQUIRE(out >= 0 && out < num_outputs_);
    return ((out_used_ >> static_cast<unsigned>(out)) & 1u) == 0;
  }

  /// Reserve the path in -> out for this cycle.
  /// Contract: both ports are free.
  void connect(PortId in, PortId out) {
    FR_REQUIRE(input_free(in));
    FR_REQUIRE(output_free(out));
    in_used_ |= std::uint64_t{1} << static_cast<unsigned>(in);
    out_used_ |= std::uint64_t{1} << static_cast<unsigned>(out);
    ++traversals_;
  }

  std::int64_t total_traversals() const { return traversals_; }
  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

 private:
  int num_inputs_;
  int num_outputs_;
  std::uint64_t in_used_ = 0;
  std::uint64_t out_used_ = 0;
  std::int64_t traversals_ = 0;
};

}  // namespace flexrouter
