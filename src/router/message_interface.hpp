// Message interface: the coupling between control unit and data path
// (Figure 3). It is the only component allowed to modify message headers —
// misroute marking and path-length counting for lifelock avoidance require
// "much more effort in the interface between the control portion and the
// data path than just copying some information" (Section 3), including
// checksum maintenance, which this module models explicitly.
//
// Headers live in the PacketStore (one per in-flight packet); flits are
// slot references. The interface resolves a head flit's slot to the
// authoritative header and is the sole writer of that record.
//
// Everything here is inline: the checksum is verified on every routing
// computation and re-sealed on every forwarded head flit, so it sits on
// the cycle-loop hot path.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/packet_store.hpp"
#include "router/flit.hpp"

namespace flexrouter {

/// Checksum over the routing-relevant header fields; models a link-layer
/// CRC. The fields pack injectively into three 64-bit words, each passed
/// through a splitmix64-style finalizer — word-wide mixing instead of a
/// byte-serial CRC keeps the per-hop reseal to a handful of multiplies.
inline std::uint32_t header_checksum(const Header& h) {
  auto mix = [](std::uint64_t v) {
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ull;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebull;
    v ^= v >> 31;
    return v;
  };
  const std::uint64_t a = static_cast<std::uint64_t>(h.packet);
  const std::uint64_t b =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.src)) << 32) |
      static_cast<std::uint32_t>(h.dest);
  const std::uint64_t c =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.length))
       << 33) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.path_len))
       << 1) |
      (h.misrouted ? 1u : 0u);
  std::uint64_t x = mix(a ^ 0x9e3779b97f4a7c15ull);
  x = mix(x ^ b);
  x = mix(x ^ c);
  return static_cast<std::uint32_t>(x ^ (x >> 32));
}

class MessageInterface {
 public:
  /// Resolve a head flit to its packet header, verifying the checksum.
  /// Contract: the flit is a head flit naming a live slot.
  static const Header& extract(const PacketStore& store, const Flit& flit) {
    FR_REQUIRE_MSG(flit.head(), "header extraction on a non-head flit");
    const Header& h = store.header(flit.slot);
    FR_REQUIRE_MSG(checksum_ok(h), "header checksum mismatch");
    return h;
  }

  /// Apply control-unit modifications to a forwarded head flit's header:
  /// bump the path-length counter on every hop, set the misroute mark when
  /// requested, and re-seal the checksum. Returns the number of header
  /// fields changed (the hardware-effort statistic).
  static int update_on_forward(PacketStore& store, const Flit& flit,
                               bool mark_misrouted) {
    FR_REQUIRE(flit.head());
    Header& h = store.header(flit.slot);
    int changed = 0;
    ++h.path_len;
    ++changed;
    if (mark_misrouted && !h.misrouted) {
      h.misrouted = true;
      ++changed;
    }
    h.checksum = header_checksum(h);
    return changed;
  }

  /// Seal a freshly generated header (computes the checksum).
  static void seal(Header& h) { h.checksum = header_checksum(h); }

  static bool checksum_ok(const Header& h) {
    return h.checksum == header_checksum(h);
  }
};

}  // namespace flexrouter
