// Message interface: the coupling between control unit and data path
// (Figure 3). It is the only component allowed to modify message headers —
// misroute marking and path-length counting for lifelock avoidance require
// "much more effort in the interface between the control portion and the
// data path than just copying some information" (Section 3), including
// checksum maintenance, which this module models explicitly.
#pragma once

#include "router/flit.hpp"

namespace flexrouter {

class MessageInterface {
 public:
  /// Extract the header of a head flit, verifying its checksum.
  /// Contract: the flit is a head flit with a valid checksum.
  static Header extract(const Flit& flit);

  /// Apply control-unit modifications to a head flit's header: bump the
  /// path-length counter on every hop, set the misroute mark when requested,
  /// and re-seal the checksum. Returns the number of header fields changed
  /// (the hardware-effort statistic).
  static int update_on_forward(Flit& flit, bool mark_misrouted);

  /// Seal a freshly generated header (computes the checksum).
  static void seal(Header& h);

  static bool checksum_ok(const Header& h);
};

}  // namespace flexrouter
