#include "router/crossbar.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace flexrouter {

Crossbar::Crossbar(int num_inputs, int num_outputs)
    : in_used_(static_cast<std::size_t>(num_inputs), 0),
      out_used_(static_cast<std::size_t>(num_outputs), 0) {
  FR_REQUIRE(num_inputs >= 1 && num_outputs >= 1);
}

void Crossbar::begin_cycle() {
  std::fill(in_used_.begin(), in_used_.end(), 0);
  std::fill(out_used_.begin(), out_used_.end(), 0);
}

bool Crossbar::input_free(PortId in) const {
  FR_REQUIRE(in >= 0 && in < num_inputs());
  return !in_used_[static_cast<std::size_t>(in)];
}

bool Crossbar::output_free(PortId out) const {
  FR_REQUIRE(out >= 0 && out < num_outputs());
  return !out_used_[static_cast<std::size_t>(out)];
}

void Crossbar::connect(PortId in, PortId out) {
  FR_REQUIRE(input_free(in));
  FR_REQUIRE(output_free(out));
  in_used_[static_cast<std::size_t>(in)] = 1;
  out_used_[static_cast<std::size_t>(out)] = 1;
  ++traversals_;
}

}  // namespace flexrouter
