#include "router/message_interface.hpp"

#include "common/assert.hpp"

namespace flexrouter {

std::uint32_t header_checksum(const Header& h) {
  // FNV-1a over the routing-relevant fields; models a link-layer CRC.
  std::uint32_t x = 2166136261u;
  auto mix = [&x](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      x ^= static_cast<std::uint32_t>(v & 0xff);
      x *= 16777619u;
      v >>= 8;
    }
  };
  mix(static_cast<std::uint64_t>(h.packet));
  mix(static_cast<std::uint64_t>(h.src));
  mix(static_cast<std::uint64_t>(h.dest));
  mix(static_cast<std::uint64_t>(h.length));
  mix(static_cast<std::uint64_t>(h.path_len));
  mix(h.misrouted ? 1u : 0u);
  return x;
}

Header MessageInterface::extract(const Flit& flit) {
  FR_REQUIRE_MSG(flit.head, "header extraction on a non-head flit");
  FR_REQUIRE_MSG(checksum_ok(flit.hdr), "header checksum mismatch");
  return flit.hdr;
}

int MessageInterface::update_on_forward(Flit& flit, bool mark_misrouted) {
  FR_REQUIRE(flit.head);
  int changed = 0;
  ++flit.hdr.path_len;
  ++changed;
  if (mark_misrouted && !flit.hdr.misrouted) {
    flit.hdr.misrouted = true;
    ++changed;
  }
  flit.hdr.checksum = header_checksum(flit.hdr);
  return changed;
}

void MessageInterface::seal(Header& h) { h.checksum = header_checksum(h); }

bool MessageInterface::checksum_ok(const Header& h) {
  return h.checksum == header_checksum(h);
}

}  // namespace flexrouter
