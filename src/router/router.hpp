// Cycle-level wormhole router.
//
// Pipeline per head flit: RC (routing computation, possibly several rule
// interpretations — the paper's fault-tolerance time overhead appears here
// as extra stall cycles), VA (virtual-channel allocation), then per flit SA
// (switch allocation through the Connection Unit) and ST/LT (switch/link
// traversal). Credit-based flow control across links; tail flits release
// their output VC.
//
// The router never consults global network state: routing algorithms see
// only the header and their own propagated per-node state, exactly like the
// hardware control unit of Figure 3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/packet_store.hpp"
#include "common/stats.hpp"
#include "router/arbiter.hpp"
#include "router/buffer.hpp"
#include "router/crossbar.hpp"
#include "router/link.hpp"
#include "router/message_interface.hpp"
#include "routing/routing.hpp"

namespace flexrouter {

/// Credit count reported for the local (ejection) port by
/// Router::output_credits. Ejection is modelled as an infinite sink, so the
/// value only has to dominate every real score input: it must exceed any
/// physical buffer depth and the VA load-score clamp (1023), and it must
/// never be decremented — credits on the local port are not tracked, there
/// is no OutputVc state behind them. Callers treat it as "always room";
/// forwarding asserts that the decrement path is never reached for the
/// local port.
inline constexpr int kEjectionSinkCredits = 1 << 20;

/// VC-allocation adaptivity criterion (Section 2.2: NAFTA exploits that
/// "it is known how long the remainder of a message is" and uses "the
/// amount of data that still has to pass a node" to rank outputs).
enum class AdaptivityCriterion {
  Credits,       // free downstream buffer space only
  AssignedData,  // least data already committed to the output (the paper's)
};

struct RouterConfig {
  int buffer_depth = 4;     // flits per VC FIFO
  int injection_depth = 16; // local input buffer depth
  /// Extra SA priority for misrouted messages ("it may be desirable to favor
  /// messages misrouted due to faults", Section 3).
  int misroute_priority_boost = 1;
  AdaptivityCriterion adaptivity = AdaptivityCriterion::Credits;
};

struct RouterStats {
  std::int64_t flits_forwarded = 0;   // network-to-network + injected
  std::int64_t flits_ejected = 0;
  std::int64_t flits_dropped = 0;     // truncated worm flits (live faults)
  std::int64_t packets_routed = 0;    // RC decisions taken
  std::int64_t decision_steps = 0;    // total rule interpretations
  std::int64_t rc_no_candidates = 0;  // RC retries (no usable output yet)
  std::int64_t va_retries = 0;
  std::int64_t header_updates = 0;    // message-interface modifications
};

class Router {
 public:
  /// `store` holds the headers of every in-flight packet in this router's
  /// network replica; the router only reads/updates headers through it.
  Router(NodeId id, const Topology& topo, const FaultSet& faults,
         const RoutingAlgorithm& algo, PacketStore& store,
         const RouterConfig& cfg);

  NodeId id() const { return id_; }
  int num_vcs() const { return vcs_; }
  PortId local_port() const { return degree_; }

  /// Wiring (done by the Network): links are owned elsewhere.
  void connect_output(PortId port, Link* link);
  void connect_input(PortId port, Link* link);

  /// Injection interface: free space in the local input buffer.
  int injection_space() const;
  void inject(const Flit& flit);

  /// One simulation cycle. Ejected flits are appended to `ejected`;
  /// truncated flits of poisoned worms are appended to `dropped` (the
  /// network accounts each against the packet's flit budget).
  void step(Cycle now, std::vector<Flit>& ejected, std::vector<Flit>& dropped);
  /// Convenience overload for unit tests driving a router directly: drops
  /// land in an internal scratch (there are none unless a test poisons).
  void step(Cycle now, std::vector<Flit>& ejected) {
    drop_scratch_.clear();
    step(now, ejected, drop_scratch_);
  }

  /// True if no flit is buffered anywhere in this router.
  bool empty() const;

  /// Abort all in-flight state (used between quiesced reconfigurations in
  /// tests; the normal simulator drains instead).
  void flush();

  /// Live link fault on output `port`: release the worm committed to each
  /// of its VCs and report the worm's slot so the caller can poison it.
  /// The link object itself is failed by the network (it is shared with
  /// the neighbour's input side).
  void kill_output_port(PortId port, std::vector<PacketSlot>& orphaned);

  /// Live node fault on this router: destroy every buffered flit (appended
  /// to `destroyed` for accounting) and reset all pipeline state.
  void destroy_all_flits(std::vector<Flit>& destroyed);

  /// Watchdog diagnostics: one record per input VC that holds flits.
  struct StalledVc {
    PortId in_port = kInvalidPort;
    VcId in_vc = kInvalidVc;
    PacketSlot slot = kInvalidPacketSlot;  // packet at the buffer front
    bool active = false;                   // committed to an output VC
    PortId out_port = kInvalidPort;        // valid when active
    VcId out_vc = kInvalidVc;
  };
  void collect_stalled(std::vector<StalledVc>& out) const;

  const RouterStats& stats() const { return stats_; }

  /// Local occupancy view used as the adaptivity criterion (buffer
  /// exploitation as load measure, Section 4.1).
  int output_credits(PortId port, VcId vc) const;
  bool output_vc_free(PortId port, VcId vc) const;
  /// Data committed to an output port across its VCs (paper: out_queue).
  int output_assigned_data(PortId port) const;

 private:
  enum class VcStatus { Idle, Routing, Active };

  struct InputVc {
    FlitBuffer buffer;
    RouteDecision decision;
    int rc_wait = 0;        // remaining stall cycles for multi-step decisions
    PortId out_port = kInvalidPort;
    VcId out_vc = kInvalidVc;
    /// Flits of the current worm still owed to the committed output —
    /// the exact amount to roll back from assigned_flits when a live
    /// fault truncates the worm mid-transfer.
    int committed = 0;
    bool mark_misrouted = false;

    explicit InputVc(int depth) : buffer(depth) {}
  };

  struct OutputVc {
    bool owned = false;
    PortId owner_port = kInvalidPort;
    VcId owner_vc = kInvalidVc;
    /// Worm holding the VC (valid while owned): live faults poison it.
    PacketSlot owner_slot = kInvalidPacketSlot;
    int credits = 0;
    /// Flits committed to this output but not yet transmitted — the
    /// paper's out_queue adaptivity measure.
    int assigned_flits = 0;
  };

  /// Compact per-input-VC scan record. The pipeline stages sweep every VC
  /// every cycle, and InputVc itself is cache-hostile (it embeds the
  /// RouteDecision candidate array), so the scanned state — status and
  /// buffer occupancy — is mirrored here at two bytes per VC: the whole
  /// sweep reads one or two cache lines. `occ` tracks buffer.size() and is
  /// updated at every push/pop site.
  struct VcMeta {
    std::uint8_t status = 0;  // VcStatus
    std::uint8_t occ = 0;     // flits buffered (== buffer.size())
  };

  int in_index(PortId port, VcId vc) const { return port * vcs_ + vc; }
  InputVc& ivc(PortId port, VcId vc) {
    return inputs_[static_cast<std::size_t>(in_index(port, vc))];
  }
  OutputVc& ovc(PortId port, VcId vc) {
    return outputs_[static_cast<std::size_t>(in_index(port, vc))];
  }
  const OutputVc& ovc(PortId port, VcId vc) const {
    return outputs_[static_cast<std::size_t>(in_index(port, vc))];
  }

  void accept_arrivals(Cycle now);
  void stage_drain_poisoned(Cycle now, std::vector<Flit>& dropped);
  void stage_rc(Cycle now);
  void stage_va();
  void stage_sa_st(Cycle now, std::vector<Flit>& ejected);
  /// Undo a truncated worm's VA commitment (output ownership + assigned
  /// data); safe to call for VCs that never committed.
  void release_commitment(InputVc& in);

  NodeId id_;
  const Topology* topo_;
  const FaultSet* faults_;
  const RoutingAlgorithm* algo_;
  PacketStore* store_;
  RouterConfig cfg_;
  int degree_;
  int vcs_;

  std::vector<InputVc> inputs_;    // (degree_+1) x vcs_
  std::vector<VcMeta> meta_;       // mirrors inputs_' status/occupancy
  std::vector<OutputVc> outputs_;  // (degree_+1) x vcs_ (local row unused for
                                   // ownership; its credits are infinite)
  std::vector<Link*> out_links_;   // degree_ entries (nullptr = no link)
  std::vector<Link*> in_links_;
  Crossbar crossbar_;
  std::vector<RoundRobinArbiter> sa_arbiters_;  // one per output port
  /// SA gather scratch: per-output request buckets, flat (degree_+1 rows
  /// of (degree_+1)*vcs_ slots), filled and consumed every cycle without
  /// touching the heap.
  std::vector<ArbCandidate> sa_bucket_;
  std::vector<int> sa_count_;  // candidates per output this cycle
  std::vector<Flit> drop_scratch_;  // backs the two-argument step overload
  /// Latched at step() entry: any poisoned worms alive in this replica?
  bool poison_active_ = false;
  RouterStats stats_;
};

}  // namespace flexrouter
