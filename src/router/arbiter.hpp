// Arbiters for VC allocation and switch allocation. Round-robin grant
// rotation provides the fairness guarantee of Section 3 ("scheduling and
// fairness"): no requester starves while others are served, and misrouted
// messages can be boosted via a priority input to compensate their "double
// disadvantage".
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace flexrouter {

/// Round-robin arbiter over `size` requesters with integer priorities:
/// the highest priority wins; among equals the one closest (cyclically)
/// after the last grant wins.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int size);

  /// Begin an arbitration round.
  void begin();
  /// Register requester `idx` with `priority`.
  void request(int idx, int priority = 0);
  /// Grant one requester (-1 if none requested); rotates the pointer.
  int grant();

  int size() const { return size_; }

 private:
  int size_;
  int last_grant_ = -1;
  std::vector<int> priority_;
  std::vector<char> requested_;
};

}  // namespace flexrouter
