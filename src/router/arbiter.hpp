// Arbiters for VC allocation and switch allocation. Round-robin grant
// rotation provides the fairness guarantee of Section 3 ("scheduling and
// fairness"): no requester starves while others are served, and misrouted
// messages can be boosted via a priority input to compensate their "double
// disadvantage".
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace flexrouter {

/// One requester in a pre-gathered candidate list (see peek_sorted).
struct ArbCandidate {
  int idx = -1;
  int priority = 0;
};

/// Round-robin arbiter over `size` requesters with integer priorities:
/// the highest priority wins; among equals the one closest (cyclically)
/// after the last grant wins.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int size);

  /// Begin an arbitration round.
  void begin();
  /// Register requester `idx` with `priority`.
  void request(int idx, int priority = 0);
  /// Compute the winner (-1 if none requested) WITHOUT rotating the
  /// pointer. The caller decides whether the grant is actually consumed —
  /// a winner that cannot use its grant (e.g. its crossbar input was taken)
  /// must not advance the round-robin state, or it loses its fairness turn.
  int peek() const;
  /// Commit a grant returned by peek(): rotates the pointer to `idx`.
  void consume(int idx);
  /// peek() + consume() in one step, for callers that always accept.
  int grant();

  /// Winner among an externally gathered candidate list, equivalent to
  /// begin() + request(each) + peek() but O(candidates) instead of
  /// O(size): no request arrays to clear and no full cyclic scan.
  /// Contract: `cands` sorted ascending by idx, all idx in [0, size).
  int peek_sorted(const ArbCandidate* cands, int count) const;

  int size() const { return size_; }

 private:
  int size_;
  int last_grant_ = -1;
  std::vector<int> priority_;
  std::vector<char> requested_;
};

}  // namespace flexrouter
