#include "router/arbiter.hpp"

namespace flexrouter {

RoundRobinArbiter::RoundRobinArbiter(int size)
    : size_(size),
      priority_(static_cast<std::size_t>(size), 0),
      requested_(static_cast<std::size_t>(size), 0) {
  FR_REQUIRE(size >= 1);
}

void RoundRobinArbiter::begin() {
  std::fill(requested_.begin(), requested_.end(), 0);
}

void RoundRobinArbiter::request(int idx, int priority) {
  FR_REQUIRE(idx >= 0 && idx < size_);
  requested_[static_cast<std::size_t>(idx)] = 1;
  priority_[static_cast<std::size_t>(idx)] = priority;
}

int RoundRobinArbiter::grant() {
  int best = -1;
  // Scan cyclically starting after the last grant so equal-priority
  // requesters are served round-robin.
  for (int k = 1; k <= size_; ++k) {
    const int idx = (last_grant_ + k) % size_;
    if (!requested_[static_cast<std::size_t>(idx)]) continue;
    if (best == -1 || priority_[static_cast<std::size_t>(idx)] >
                          priority_[static_cast<std::size_t>(best)]) {
      best = idx;
    }
  }
  if (best >= 0) last_grant_ = best;
  return best;
}

}  // namespace flexrouter
