#include "router/arbiter.hpp"

namespace flexrouter {

RoundRobinArbiter::RoundRobinArbiter(int size)
    : size_(size),
      priority_(static_cast<std::size_t>(size), 0),
      requested_(static_cast<std::size_t>(size), 0) {
  FR_REQUIRE(size >= 1);
}

void RoundRobinArbiter::begin() {
  std::fill(requested_.begin(), requested_.end(), 0);
}

void RoundRobinArbiter::request(int idx, int priority) {
  FR_REQUIRE(idx >= 0 && idx < size_);
  requested_[static_cast<std::size_t>(idx)] = 1;
  priority_[static_cast<std::size_t>(idx)] = priority;
}

int RoundRobinArbiter::peek() const {
  int best = -1;
  // Scan cyclically starting after the last grant so equal-priority
  // requesters are served round-robin.
  for (int k = 1; k <= size_; ++k) {
    const int idx = (last_grant_ + k) % size_;
    if (!requested_[static_cast<std::size_t>(idx)]) continue;
    if (best == -1 || priority_[static_cast<std::size_t>(idx)] >
                          priority_[static_cast<std::size_t>(best)]) {
      best = idx;
    }
  }
  return best;
}

void RoundRobinArbiter::consume(int idx) {
  FR_REQUIRE(idx >= 0 && idx < size_);
  last_grant_ = idx;
}

int RoundRobinArbiter::grant() {
  const int best = peek();
  if (best >= 0) last_grant_ = best;
  return best;
}

int RoundRobinArbiter::peek_sorted(const ArbCandidate* cands,
                                   int count) const {
  // Cyclic order from last_grant_+1: indices above the pointer come first
  // (ascending), then the wrapped ones. The winner is the max-priority
  // candidate earliest in that order — ascending input order means the
  // first candidate seen in each wrap class has the smallest idx.
  int best = -1;
  int best_prio = 0;
  bool best_wrapped = false;
  for (int i = 0; i < count; ++i) {
    FR_ASSERT(cands[i].idx >= 0 && cands[i].idx < size_);
    const bool wrapped = cands[i].idx <= last_grant_;
    if (best < 0 || cands[i].priority > best_prio ||
        (cands[i].priority == best_prio && best_wrapped && !wrapped)) {
      best = cands[i].idx;
      best_prio = cands[i].priority;
      best_wrapped = wrapped;
    }
  }
  return best;
}

}  // namespace flexrouter
