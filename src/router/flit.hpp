// Flit records.
//
// Wormhole switching (Section 2.2): a message is divided into flits
// transmitted in a pipelined fashion; only the head flit carries routing
// information. A flit is therefore an 8-byte POD naming its packet's slot
// in the PacketStore plus its position in the train — the header itself
// lives exactly once, in the store. Buffers and links move these records
// by value; routers resolve the slot only when they actually need header
// fields (RC on head flits, SA's misroute boost, ejection bookkeeping).
#pragma once

#include <cstdint>

#include "common/packet_store.hpp"

namespace flexrouter {

struct Flit {
  static constexpr std::uint8_t kHeadFlag = 1;
  static constexpr std::uint8_t kTailFlag = 2;

  PacketSlot slot = kInvalidPacketSlot;
  /// Sequence number within the packet (0 = head).
  std::uint16_t seq = 0;
  std::uint8_t flags = 0;
  std::uint8_t reserved = 0;

  bool head() const { return (flags & kHeadFlag) != 0; }
  bool tail() const { return (flags & kTailFlag) != 0; }
};

static_assert(sizeof(Flit) == 8, "Flit must stay an 8-byte POD record");

inline Flit make_head_flit(PacketSlot slot, int length) {
  FR_REQUIRE(length >= 1);
  Flit f;
  f.slot = slot;
  f.seq = 0;
  f.flags = Flit::kHeadFlag;
  if (length == 1) f.flags |= Flit::kTailFlag;
  return f;
}

inline Flit make_body_flit(PacketSlot slot, int seq, int length) {
  FR_REQUIRE(seq >= 1 && seq < length && length <= 0xffff);
  Flit f;
  f.slot = slot;
  f.seq = static_cast<std::uint16_t>(seq);
  f.flags = seq == length - 1 ? Flit::kTailFlag : 0;
  return f;
}

}  // namespace flexrouter
