// Flits and packet headers.
//
// Wormhole switching (Section 2.2): a message is divided into flits
// transmitted in a pipelined fashion; only the head flit carries routing
// information. For simulation convenience every flit carries a copy of the
// header, but routers only read it on head flits, and only the message
// interface mutates it (misroute marking, path-length counter, checksum).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace flexrouter {

struct Header {
  PacketId packet = -1;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  /// Total message length in flits (known up front — NAFTA's adaptivity
  /// criterion exploits this).
  int length = 0;
  /// Lifelock handling (Section 3): set once the message leaves a minimal
  /// path due to faults.
  bool misrouted = false;
  /// Hops travelled so far; used with misrouted for lifelock avoidance.
  int path_len = 0;
  /// Header checksum; must be updated whenever the header is modified
  /// ("the hardware has to be capable to support this").
  std::uint32_t checksum = 0;
};

/// Computes the header checksum over all routing-relevant fields.
std::uint32_t header_checksum(const Header& h);

struct Flit {
  Header hdr;
  bool head = false;
  bool tail = false;
  /// Sequence number within the packet (0 = head).
  int seq = 0;
};

inline Flit make_head_flit(const Header& h) {
  Flit f;
  f.hdr = h;
  f.head = true;
  f.tail = h.length == 1;
  f.seq = 0;
  return f;
}

inline Flit make_body_flit(const Header& h, int seq) {
  Flit f;
  f.hdr = h;
  f.head = false;
  f.tail = seq == h.length - 1;
  f.seq = seq;
  return f;
}

}  // namespace flexrouter
