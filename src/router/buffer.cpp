#include "router/buffer.hpp"

#include "common/assert.hpp"

namespace flexrouter {

FlitBuffer::FlitBuffer(int depth) : depth_(depth) {
  FR_REQUIRE_MSG(depth >= 1, "flit buffer needs depth >= 1");
}

void FlitBuffer::push(const Flit& f) {
  FR_REQUIRE_MSG(!full(), "flit buffer overflow (credit protocol violated)");
  fifo_.push_back(f);
}

const Flit& FlitBuffer::front() const {
  FR_REQUIRE(!empty());
  return fifo_.front();
}

Flit FlitBuffer::pop() {
  FR_REQUIRE(!empty());
  Flit f = fifo_.front();
  fifo_.pop_front();
  return f;
}

}  // namespace flexrouter
