#include "router/link.hpp"

namespace flexrouter {

Link::Link(int num_vcs, int latency) : num_vcs_(num_vcs), latency_(latency) {
  FR_REQUIRE(num_vcs >= 1 && num_vcs <= kMaxVcs);
  FR_REQUIRE(latency >= 1);
  const std::size_t span =
      std::bit_ceil(static_cast<std::size_t>(latency) + 1);
  stage_mask_ = span - 1;
  flits_.resize(span);
  credits_.resize(span);
}

}  // namespace flexrouter
