#include "router/link.hpp"

#include "common/assert.hpp"

namespace flexrouter {

Link::Link(int num_vcs, int latency) : num_vcs_(num_vcs), latency_(latency) {
  FR_REQUIRE(num_vcs >= 1);
  FR_REQUIRE(latency >= 1);
}

void Link::send_flit(Cycle now, VcId vc, const Flit& flit) {
  FR_REQUIRE(vc >= 0 && vc < num_vcs_);
  // One flit per cycle: a second send in the same cycle is a router bug.
  FR_REQUIRE_MSG(flits_.empty() || std::get<0>(flits_.back()) != now + latency_,
                 "two flits sent on one link in one cycle");
  flits_.emplace_back(now + latency_, vc, flit);
  info_.record_transfer(now);
}

std::optional<std::pair<VcId, Flit>> Link::receive_flit(Cycle now) {
  if (flits_.empty() || std::get<0>(flits_.front()) > now) return std::nullopt;
  FR_ASSERT_MSG(std::get<0>(flits_.front()) == now,
                "link delivery missed a cycle");
  auto [cycle, vc, flit] = flits_.front();
  (void)cycle;
  flits_.pop_front();
  return std::make_pair(vc, flit);
}

void Link::send_credit(Cycle now, VcId vc) {
  FR_REQUIRE(vc >= 0 && vc < num_vcs_);
  credits_.emplace_back(now + latency_, vc);
}

std::vector<VcId> Link::receive_credits(Cycle now) {
  std::vector<VcId> out;
  while (!credits_.empty() && credits_.front().first <= now) {
    FR_ASSERT(credits_.front().first == now);
    out.push_back(credits_.front().second);
    credits_.pop_front();
  }
  return out;
}

}  // namespace flexrouter
