// Unidirectional link channel: carries flits (tagged with their virtual
// channel) forward with a fixed pipeline latency, and credits backward.
// Each link has an Information Unit (Figure 3) producing link load and
// fault status for the control unit.
//
// Both directions are fixed-length shift registers sized by the latency —
// a circular array indexed by arrival cycle — so send/receive are array
// writes, never heap traffic. The register has latency+1 stages because a
// flit arriving at cycle t may be consumed only when its receiver steps at
// t, which (routers step in ascending node order) can be after the sender
// has already transmitted cycle t's flit. Credits travel as a per-cycle VC
// bitmask: at most one credit per VC can be issued per cycle (the crossbar
// pops at most one flit per input port), so one bit per VC is exact.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "router/flit.hpp"

namespace flexrouter {

/// Per-link measurement block ("Information Units generate information about
/// the links, like load ... and faults. For instance they could produce and
/// check heartbeat messages.").
class LinkInfoUnit {
 public:
  void record_transfer(Cycle now) {
    ++flits_total_;
    last_transfer_ = now;
  }
  /// Exponentially smoothed load in [0, 1]: fraction of recent cycles busy.
  void tick(Cycle now, bool busy) {
    (void)now;
    load_ = load_ * (1.0 - kAlpha) + (busy ? kAlpha : 0.0);
  }
  double load() const { return load_; }
  std::int64_t flits_total() const { return flits_total_; }
  Cycle last_transfer() const { return last_transfer_; }

 private:
  static constexpr double kAlpha = 1.0 / 64.0;
  double load_ = 0.0;
  std::int64_t flits_total_ = 0;
  Cycle last_transfer_ = -1;
};

class Link {
 public:
  /// Bitmask credit encoding caps the VCs a physical link can multiplex.
  static constexpr int kMaxVcs = 32;

  /// `latency` >= 1 cycles flit transport; credits return with the same
  /// latency.
  Link(int num_vcs, int latency);

  int num_vcs() const { return num_vcs_; }
  int latency() const { return latency_; }

  void send_flit(Cycle now, VcId vc, const Flit& flit) {
    FR_REQUIRE(vc >= 0 && vc < num_vcs_);
    FR_REQUIRE_MSG(!failed_, "flit sent on a failed link");
    if (deferred_) {
      // Shard-boundary staging: park the flit in a slot only the sending
      // shard touches; flush_deferred applies it at the cycle barrier. A
      // send at cycle t is first observable at t+latency >= t+1, so the
      // deferral is invisible to every same-cycle reader.
      FR_REQUIRE_MSG(pending_vc_ < 0,
                     "two flits sent on one link in one cycle");
      pending_vc_ = vc;
      pending_flit_ = flit;
      return;
    }
    FlitStage& s = flits_[stage_index(now + latency_)];
    // One flit per cycle: an occupied stage means either a second send in
    // the same cycle or an earlier flit the receiver never picked up.
    FR_REQUIRE_MSG(s.arrive < 0, "two flits sent on one link in one cycle");
    s.arrive = now + latency_;
    s.vc = vc;
    s.flit = flit;
    ++flits_in_flight_;
    if (throttle_ > 1) next_free_ = now + throttle_;
    info_.record_transfer(now);
  }

  /// Flit arriving at `now`, if any (at most one per cycle per link).
  std::optional<std::pair<VcId, Flit>> receive_flit(Cycle now) {
    FlitStage& s = flits_[stage_index(now)];
    if (s.arrive < 0) return std::nullopt;
    FR_ASSERT_MSG(s.arrive == now, "link delivery missed a cycle");
    s.arrive = -1;
    --flits_in_flight_;
    return std::make_pair(s.vc, s.flit);
  }

  void send_credit(Cycle now, VcId vc) {
    FR_REQUIRE(vc >= 0 && vc < num_vcs_);
    // A failed link swallows credits: the upstream output VC is dead anyway
    // and its counters are rebuilt by Router::flush at reconfiguration.
    if (failed_) return;
    if (deferred_) {
      const std::uint32_t bit = 1u << static_cast<unsigned>(vc);
      FR_ASSERT_MSG((pending_credit_mask_ & bit) == 0,
                    "two credits for one VC in one cycle");
      pending_credit_mask_ |= bit;
      return;
    }
    CreditStage& s = credits_[stage_index(now + latency_)];
    const std::uint32_t bit = 1u << static_cast<unsigned>(vc);
    if (s.arrive == now + latency_) {
      FR_ASSERT_MSG((s.mask & bit) == 0,
                    "two credits for one VC in one cycle");
      s.mask |= bit;
    } else {
      FR_REQUIRE_MSG(s.arrive < 0, "credit delivery missed a cycle");
      s.arrive = now + latency_;
      s.mask = bit;
    }
    ++credits_in_flight_;
  }

  /// All credits arriving at `now`, one bit per VC (bit v == VC v).
  std::uint32_t receive_credits(Cycle now) {
    CreditStage& s = credits_[stage_index(now)];
    if (s.arrive < 0) return 0;
    FR_ASSERT_MSG(s.arrive == now, "credit delivery missed a cycle");
    const std::uint32_t mask = s.mask;
    credits_in_flight_ -= std::popcount(mask);
    s.arrive = -1;
    s.mask = 0;
    return mask;
  }

  bool idle() const {
    return flits_in_flight_ == 0 && credits_in_flight_ == 0 &&
           pending_vc_ < 0 && pending_credit_mask_ == 0;
  }

  /// Shard-boundary mode: sends stage into pending slots instead of the
  /// shift registers until flush_deferred applies them (canonical link
  /// order, at the network's cycle barrier).
  void set_deferred(bool on) { deferred_ = on; }
  bool deferred() const { return deferred_; }

  /// Apply this cycle's staged send/credits. Serial-context only; replays
  /// exactly what the direct send paths would have written at cycle `now`.
  void flush_deferred(Cycle now) {
    if (pending_vc_ >= 0) {
      FlitStage& s = flits_[stage_index(now + latency_)];
      FR_REQUIRE_MSG(s.arrive < 0, "two flits sent on one link in one cycle");
      s.arrive = now + latency_;
      s.vc = pending_vc_;
      s.flit = pending_flit_;
      ++flits_in_flight_;
      if (throttle_ > 1) next_free_ = now + throttle_;
      info_.record_transfer(now);
      pending_vc_ = kInvalidVc;
    }
    if (pending_credit_mask_ != 0) {
      CreditStage& s = credits_[stage_index(now + latency_)];
      FR_REQUIRE_MSG(s.arrive < 0, "credit delivery missed a cycle");
      s.arrive = now + latency_;
      s.mask = pending_credit_mask_;
      credits_in_flight_ += std::popcount(pending_credit_mask_);
      pending_credit_mask_ = 0;
    }
  }

  /// Live fault (assumption v): the channel dies mid-operation. Every flit
  /// in the pipeline is destroyed — appended to `destroyed` so the caller
  /// can poison the owning worms and keep the per-packet flit accounting
  /// exact — and in-flight credits vanish with the wire. Idempotent.
  void fail(std::vector<Flit>& destroyed) {
    if (failed_) return;
    failed_ = true;
    if (pending_vc_ >= 0) {
      destroyed.push_back(pending_flit_);
      pending_vc_ = kInvalidVc;
    }
    pending_credit_mask_ = 0;
    for (FlitStage& s : flits_) {
      if (s.arrive >= 0) destroyed.push_back(s.flit);
      s.arrive = -1;
    }
    flits_in_flight_ = 0;
    for (CreditStage& s : credits_) {
      s.arrive = -1;
      s.mask = 0;
    }
    credits_in_flight_ = 0;
  }

  /// The Information Unit's fault status (Figure 3): both endpoints see a
  /// dead channel immediately, so VC allocation refuses it without waiting
  /// for the control plane's quiescent reconfiguration.
  bool failed() const { return failed_; }

  /// Live repair: the channel hardware rejoins service. The pipeline was
  /// emptied by fail(), so the shift registers are already clean; routing
  /// state re-adopts the channel at the next quiescent reconfiguration.
  void repair() { failed_ = false; }

  /// Fail-slow throttle (assumption i relaxed): a degraded channel still
  /// transmits without destruction but accepts at most one flit per
  /// `factor` cycles. factor == 1 is full speed. Orthogonal to failed() —
  /// the throttle persists across fail/repair, matching hardware whose
  /// degradation is physical (a dropped lane), not protocol state.
  void set_throttle(int factor) {
    FR_REQUIRE(factor >= 1);
    throttle_ = factor;
  }
  int throttle() const { return throttle_; }

  /// Can the sender put a flit on the wire at `now`? Full-speed links
  /// always can (the common path stays branch-predictable and untouched by
  /// the fail-slow feature); a throttled link enforces its duty cycle.
  bool can_accept(Cycle now) const {
    return throttle_ <= 1 || now >= next_free_;
  }

  LinkInfoUnit& info() { return info_; }
  const LinkInfoUnit& info() const { return info_; }

 private:
  struct FlitStage {
    Cycle arrive = -1;
    Flit flit;
    VcId vc = kInvalidVc;
  };
  struct CreditStage {
    Cycle arrive = -1;
    std::uint32_t mask = 0;
  };

  /// Stage count rounded up to a power of two (>= latency+1), so the
  /// cycle-to-stage map is a mask instead of an integer division. Any
  /// latency+1 consecutive cycles still map to distinct stages.
  std::size_t stage_index(Cycle arrival) const {
    return static_cast<std::size_t>(arrival) & stage_mask_;
  }

  int num_vcs_;
  int latency_;
  std::size_t stage_mask_ = 0;
  std::vector<FlitStage> flits_;      // bit_ceil(latency_+1) stages
  std::vector<CreditStage> credits_;  // bit_ceil(latency_+1) stages
  int flits_in_flight_ = 0;
  int credits_in_flight_ = 0;
  bool failed_ = false;
  int throttle_ = 1;      // flits per `throttle_` cycles; 1 == full speed
  Cycle next_free_ = 0;   // earliest cycle a throttled link accepts again
  /// Shard-boundary staging (set_deferred): written only by the sending
  /// router's shard during the parallel phase, drained at the barrier.
  bool deferred_ = false;
  VcId pending_vc_ = kInvalidVc;
  Flit pending_flit_;
  std::uint32_t pending_credit_mask_ = 0;
  LinkInfoUnit info_;
};

}  // namespace flexrouter
