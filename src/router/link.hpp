// Unidirectional link channel: carries flits (tagged with their virtual
// channel) forward with a fixed pipeline latency, and credits backward.
// Each link has an Information Unit (Figure 3) producing link load and
// fault status for the control unit.
#pragma once

#include <deque>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "router/flit.hpp"

namespace flexrouter {

/// Per-link measurement block ("Information Units generate information about
/// the links, like load ... and faults. For instance they could produce and
/// check heartbeat messages.").
class LinkInfoUnit {
 public:
  void record_transfer(Cycle now) {
    ++flits_total_;
    last_transfer_ = now;
  }
  /// Exponentially smoothed load in [0, 1]: fraction of recent cycles busy.
  void tick(Cycle now, bool busy) {
    (void)now;
    load_ = load_ * (1.0 - kAlpha) + (busy ? kAlpha : 0.0);
  }
  double load() const { return load_; }
  std::int64_t flits_total() const { return flits_total_; }
  Cycle last_transfer() const { return last_transfer_; }

 private:
  static constexpr double kAlpha = 1.0 / 64.0;
  double load_ = 0.0;
  std::int64_t flits_total_ = 0;
  Cycle last_transfer_ = -1;
};

class Link {
 public:
  /// `latency` >= 1 cycles flit transport; credits return with the same
  /// latency.
  Link(int num_vcs, int latency);

  int num_vcs() const { return num_vcs_; }
  int latency() const { return latency_; }

  void send_flit(Cycle now, VcId vc, const Flit& flit);
  /// Flit arriving at `now`, if any (at most one per cycle per link).
  std::optional<std::pair<VcId, Flit>> receive_flit(Cycle now);

  void send_credit(Cycle now, VcId vc);
  /// All credits arriving at `now`.
  std::vector<VcId> receive_credits(Cycle now);

  bool idle() const { return flits_.empty() && credits_.empty(); }

  LinkInfoUnit& info() { return info_; }
  const LinkInfoUnit& info() const { return info_; }

 private:
  int num_vcs_;
  int latency_;
  std::deque<std::tuple<Cycle, VcId, Flit>> flits_;
  std::deque<std::pair<Cycle, VcId>> credits_;
  LinkInfoUnit info_;
};

}  // namespace flexrouter
