#include "router/router.hpp"

#include <algorithm>
#include <bit>

namespace flexrouter {

Router::Router(NodeId id, const Topology& topo, const FaultSet& faults,
               const RoutingAlgorithm& algo, PacketStore& store,
               const RouterConfig& cfg)
    : id_(id),
      topo_(&topo),
      faults_(&faults),
      algo_(&algo),
      store_(&store),
      cfg_(cfg),
      degree_(topo.degree()),
      vcs_(algo.num_vcs()),
      crossbar_(degree_ + 1, degree_ + 1) {
  FR_REQUIRE(topo.valid_node(id));
  FR_REQUIRE(vcs_ >= 1);
  inputs_.reserve(static_cast<std::size_t>((degree_ + 1) * vcs_));
  for (PortId p = 0; p <= degree_; ++p)
    for (VcId v = 0; v < vcs_; ++v)
      inputs_.emplace_back(p == degree_ ? cfg.injection_depth
                                        : cfg.buffer_depth);
  meta_.assign(static_cast<std::size_t>((degree_ + 1) * vcs_), VcMeta{});
  outputs_.assign(static_cast<std::size_t>((degree_ + 1) * vcs_), OutputVc{});
  out_links_.assign(static_cast<std::size_t>(degree_), nullptr);
  in_links_.assign(static_cast<std::size_t>(degree_), nullptr);
  sa_arbiters_.reserve(static_cast<std::size_t>(degree_ + 1));
  for (PortId p = 0; p <= degree_; ++p)
    sa_arbiters_.emplace_back((degree_ + 1) * vcs_);
  sa_bucket_.assign(
      static_cast<std::size_t>((degree_ + 1) * (degree_ + 1) * vcs_),
      ArbCandidate{});
  sa_count_.assign(static_cast<std::size_t>(degree_ + 1), 0);
}

void Router::connect_output(PortId port, Link* link) {
  FR_REQUIRE(port >= 0 && port < degree_);
  FR_REQUIRE(link != nullptr && link->num_vcs() == vcs_);
  out_links_[static_cast<std::size_t>(port)] = link;
  // Initial credits = full downstream buffer.
  for (VcId v = 0; v < vcs_; ++v) ovc(port, v).credits = cfg_.buffer_depth;
}

void Router::connect_input(PortId port, Link* link) {
  FR_REQUIRE(port >= 0 && port < degree_);
  FR_REQUIRE(link != nullptr && link->num_vcs() == vcs_);
  in_links_[static_cast<std::size_t>(port)] = link;
}

int Router::injection_space() const {
  return inputs_[static_cast<std::size_t>(in_index(degree_, 0))]
      .buffer.free_slots();
}

void Router::inject(const Flit& flit) {
  ivc(degree_, 0).buffer.push(flit);
  ++meta_[static_cast<std::size_t>(in_index(degree_, 0))].occ;
}

bool Router::empty() const {
  for (const VcMeta& m : meta_)
    if (m.occ != 0) return false;
  return true;
}

void Router::flush() {
  for (InputVc& vc : inputs_) {
    while (!vc.buffer.empty()) vc.buffer.pop();
    vc.rc_wait = 0;
    vc.out_port = kInvalidPort;
    vc.out_vc = kInvalidVc;
    vc.committed = 0;
  }
  std::fill(meta_.begin(), meta_.end(), VcMeta{});
  for (OutputVc& vc : outputs_) {
    vc.owned = false;
    vc.owner_slot = kInvalidPacketSlot;
    vc.assigned_flits = 0;
  }
  // Restore credits to full: the network guarantees links are drained.
  for (PortId p = 0; p < degree_; ++p)
    if (out_links_[static_cast<std::size_t>(p)] != nullptr)
      for (VcId v = 0; v < vcs_; ++v) ovc(p, v).credits = cfg_.buffer_depth;
}

void Router::release_commitment(InputVc& in) {
  if (in.out_port != kInvalidPort && in.out_port != local_port()) {
    OutputVc& o = ovc(in.out_port, in.out_vc);
    o.owned = false;
    o.owner_slot = kInvalidPacketSlot;
    o.assigned_flits = std::max(0, o.assigned_flits - in.committed);
  }
  in.out_port = kInvalidPort;
  in.out_vc = kInvalidVc;
  in.committed = 0;
}

void Router::kill_output_port(PortId port, std::vector<PacketSlot>& orphaned) {
  FR_REQUIRE(port >= 0 && port < degree_);
  for (VcId v = 0; v < vcs_; ++v) {
    OutputVc& o = ovc(port, v);
    if (!o.owned) continue;
    orphaned.push_back(o.owner_slot);
    // Ownership is torn down here; the owner input VC's share of
    // assigned_flits is rolled back when its first poisoned flit drains
    // (release_commitment), or by flush() if the worm's remaining flits
    // were all destroyed elsewhere.
    o.owned = false;
    o.owner_slot = kInvalidPacketSlot;
  }
}

void Router::destroy_all_flits(std::vector<Flit>& destroyed) {
  for (InputVc& vc : inputs_) {
    while (!vc.buffer.empty()) destroyed.push_back(vc.buffer.pop());
    vc.rc_wait = 0;
    vc.out_port = kInvalidPort;
    vc.out_vc = kInvalidVc;
    vc.committed = 0;
  }
  std::fill(meta_.begin(), meta_.end(), VcMeta{});
  for (OutputVc& vc : outputs_) {
    vc.owned = false;
    vc.owner_slot = kInvalidPacketSlot;
    vc.assigned_flits = 0;
  }
}

void Router::collect_stalled(std::vector<StalledVc>& out) const {
  const int ninputs = (degree_ + 1) * vcs_;
  for (int idx = 0; idx < ninputs; ++idx) {
    if (meta_[static_cast<std::size_t>(idx)].occ == 0) continue;
    const InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    StalledVc s;
    s.in_port = idx / vcs_;
    s.in_vc = idx % vcs_;
    s.slot = in.buffer.front().slot;
    s.active = meta_[static_cast<std::size_t>(idx)].status ==
               static_cast<std::uint8_t>(VcStatus::Active);
    if (s.active) {
      s.out_port = in.out_port;
      s.out_vc = in.out_vc;
    }
    out.push_back(s);
  }
}

int Router::output_credits(PortId port, VcId vc) const {
  FR_REQUIRE(port >= 0 && port <= degree_);
  FR_REQUIRE(vc >= 0 && vc < vcs_);
  if (port == degree_) return kEjectionSinkCredits;
  return ovc(port, vc).credits;
}

bool Router::output_vc_free(PortId port, VcId vc) const {
  if (port == degree_) return true;  // ejection VCs never block
  return !ovc(port, vc).owned;
}

int Router::output_assigned_data(PortId port) const {
  FR_REQUIRE(port >= 0 && port <= degree_);
  if (port == degree_) return 0;
  int total = 0;
  for (VcId v = 0; v < vcs_; ++v) total += ovc(port, v).assigned_flits;
  return total;
}

void Router::accept_arrivals(Cycle now) {
  for (PortId p = 0; p < degree_; ++p) {
    Link* link = in_links_[static_cast<std::size_t>(p)];
    if (link == nullptr) continue;
    if (auto arrival = link->receive_flit(now)) {
      auto& [vc, flit] = *arrival;
      ivc(p, vc).buffer.push(flit);
      ++meta_[static_cast<std::size_t>(in_index(p, vc))].occ;
    }
  }
  for (PortId p = 0; p < degree_; ++p) {
    Link* link = out_links_[static_cast<std::size_t>(p)];
    if (link == nullptr) continue;
    std::uint32_t mask = link->receive_credits(now);
    while (mask != 0) {
      const VcId vc = std::countr_zero(mask);
      mask &= mask - 1;
      OutputVc& o = ovc(p, vc);
      ++o.credits;
      FR_ASSERT_MSG(o.credits <= cfg_.buffer_depth, "credit overflow");
    }
  }
}

void Router::stage_drain_poisoned(Cycle now, std::vector<Flit>& dropped) {
  // Poisoned-tail semantics, hop by hop: each cycle, every input VC whose
  // front flit belongs to a truncated worm drops that flit, returns the
  // credit upstream, and (on the first drop) releases the worm's VA
  // commitment — output VC ownership, crossbar eligibility, assigned
  // data — exactly as a real poisoned tail flit would on its way through.
  // One flit per VC per cycle, matching the link's one-credit-per-VC
  // bitmask encoding.
  const int ninputs = (degree_ + 1) * vcs_;
  for (int idx = 0; idx < ninputs; ++idx) {
    VcMeta& m = meta_[static_cast<std::size_t>(idx)];
    if (m.occ == 0) continue;
    InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    if (!store_->poisoned(in.buffer.front().slot)) continue;
    const Flit f = in.buffer.pop();
    --m.occ;
    ++stats_.flits_dropped;
    const PortId p = idx / vcs_;
    if (p < degree_ && in_links_[static_cast<std::size_t>(p)] != nullptr)
      in_links_[static_cast<std::size_t>(p)]->send_credit(now, idx % vcs_);
    if (m.status == static_cast<std::uint8_t>(VcStatus::Active))
      release_commitment(in);
    m.status = static_cast<std::uint8_t>(VcStatus::Idle);
    dropped.push_back(f);
  }
}

void Router::stage_rc(Cycle now) {
  (void)now;
  const int ninputs = (degree_ + 1) * vcs_;
  for (int idx = 0; idx < ninputs; ++idx) {
    VcMeta& m = meta_[static_cast<std::size_t>(idx)];
    if (m.status != static_cast<std::uint8_t>(VcStatus::Idle) || m.occ == 0)
      continue;
    InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    const Flit& flit = in.buffer.front();
    // A truncated worm's flits wait for the drain stage; they may be body
    // flits at the front of an idle VC, which is unreachable otherwise.
    if (poison_active_ && store_->poisoned(flit.slot)) continue;
    FR_ASSERT_MSG(flit.head(), "non-head flit at the head of an idle VC");

    RouteContext ctx;
    ctx.node = id_;
    ctx.in_port = idx / vcs_;
    ctx.in_vc = idx % vcs_;
    const Header& hdr = MessageInterface::extract(*store_, flit);
    ctx.src = hdr.src;
    ctx.dest = hdr.dest;
    ctx.path_len = hdr.path_len;
    ctx.misrouted = hdr.misrouted;

    RouteDecision decision = algo_->route(ctx);
    stats_.decision_steps += decision.steps;
    ++stats_.packets_routed;

    // Lifelock guard: over-budget messages are restricted to the escape
    // layer, whose deterministic routing always terminates.
    if (ctx.path_len > algo_->max_path_len()) {
      RouteDecision filtered;
      filtered.steps = decision.steps;
      filtered.mark_misrouted = decision.mark_misrouted;
      for (const RouteCandidate& c : decision.candidates)
        if (c.port == local_port() || algo_->is_escape_vc(c.vc))
          filtered.candidates.push_back(c);
      decision = filtered;
    }

    if (decision.candidates.empty()) {
      ++stats_.rc_no_candidates;  // retry next cycle
      continue;
    }
    in.decision = decision;
    in.rc_wait = decision.steps - 1;
    in.mark_misrouted = decision.mark_misrouted;
    m.status = static_cast<std::uint8_t>(VcStatus::Routing);
  }
}

void Router::stage_va() {
  const int ninputs = (degree_ + 1) * vcs_;
  for (int idx = 0; idx < ninputs; ++idx) {
    VcMeta& m = meta_[static_cast<std::size_t>(idx)];
    if (m.status != static_cast<std::uint8_t>(VcStatus::Routing)) continue;
    InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    if (in.rc_wait > 0) {
      --in.rc_wait;  // multi-interpretation decision still in progress
      continue;
    }
    // Sort candidates by (priority, free credits) and take the best free
    // output VC — the adaptivity selection. A VC is only granted when it
    // has at least one credit: committing a head to a credit-less channel
    // would strand it in a state where the escape option is gone, voiding
    // the Duato deadlock-freedom argument (a blocked head must always be
    // able to re-select, and with a credit the head is guaranteed to move
    // into the downstream buffer, where it routes afresh).
    const RouteCandidate* best = nullptr;
    int best_score = 0;
    for (const RouteCandidate& c : in.decision.candidates) {
      // Information Units report link faults to their endpoints at once
      // (Figure 3): a VC on a dead channel is never granted, even before
      // the control plane's quiescent reconfiguration catches up.
      if (c.port != local_port() &&
          (out_links_[static_cast<std::size_t>(c.port)] == nullptr ||
           out_links_[static_cast<std::size_t>(c.port)]->failed()))
        continue;
      if (!output_vc_free(c.port, c.vc)) continue;
      if (output_credits(c.port, c.vc) <= 0) continue;
      // Adaptivity selection: router-visible load ranks equal-priority
      // candidates. Credits = free downstream buffer space; AssignedData
      // additionally penalises outputs already committed to long worms
      // (the paper's out_queue criterion).
      int load_score = std::min(output_credits(c.port, c.vc), 1023);
      if (cfg_.adaptivity == AdaptivityCriterion::AssignedData)
        load_score -= 4 * std::min(output_assigned_data(c.port), 200);
      const int score = c.priority * 4096 + load_score;
      if (best == nullptr || score > best_score) {
        best = &c;
        best_score = score;
      }
    }
    if (best == nullptr) {
      ++stats_.va_retries;
      continue;
    }
    in.out_port = best->port;
    in.out_vc = best->vc;
    if (best->port != local_port()) {
      OutputVc& o = ovc(best->port, best->vc);
      o.owned = true;
      o.owner_port = idx / vcs_;
      o.owner_vc = idx % vcs_;
      o.owner_slot = in.buffer.front().slot;
      // The whole message is now committed to this output; wormhole
      // switching knows its length up front (Section 2.2). `committed`
      // mirrors the worm's share so a truncation can roll it back.
      const int length = store_->header(in.buffer.front().slot).length;
      o.assigned_flits += length;
      in.committed = length;
    }
    m.status = static_cast<std::uint8_t>(VcStatus::Active);
  }
}

void Router::stage_sa_st(Cycle now, std::vector<Flit>& ejected) {
  crossbar_.begin_cycle();
  const int ninputs = (degree_ + 1) * vcs_;
  // Gather: one ascending pass over the input VCs buckets SA requests by
  // their committed output (each active VC targets exactly one port, so
  // buckets partition the inputs and stay sorted by index). Credits and
  // the misroute boost are stable across this cycle's grants — an earlier
  // output's grant only decrements its own credit counter and only pops
  // the granted VC — so evaluating them here, before any grant, is
  // equivalent to the per-output rescan this replaces.
  std::fill(sa_count_.begin(), sa_count_.end(), 0);
  for (int idx = 0; idx < ninputs; ++idx) {
    const VcMeta& m = meta_[static_cast<std::size_t>(idx)];
    if (m.status != static_cast<std::uint8_t>(VcStatus::Active) || m.occ == 0)
      continue;
    InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    const PortId out = in.out_port;
    if (out != local_port() && ovc(out, in.out_vc).credits <= 0) continue;
    // Fail-slow: a throttled link refuses the wire until its duty cycle
    // allows another flit; the worm stalls in place (backpressure), it is
    // never destroyed.
    if (out != local_port() &&
        !out_links_[static_cast<std::size_t>(out)]->can_accept(now))
      continue;
    // Misroute boost applies to the head flit only. Pre-store flits
    // carried a header copy frozen at injection time, so body flits
    // always saw misrouted == false; keep that arbitration behaviour
    // even though the shared header may flip mid-flight.
    const Flit& front = in.buffer.front();
    const int prio = front.head() && store_->header(front.slot).misrouted
                         ? cfg_.misroute_priority_boost
                         : 0;
    sa_bucket_[static_cast<std::size_t>(out * ninputs + sa_count_[
        static_cast<std::size_t>(out)]++)] = {idx, prio};
  }
  // Arbitrate per output port in ascending order; misrouted messages got
  // their priority boost at gather time.
  for (PortId out = 0; out <= degree_; ++out) {
    int count = sa_count_[static_cast<std::size_t>(out)];
    if (count == 0 || !crossbar_.output_free(out)) continue;
    ArbCandidate* cands = &sa_bucket_[static_cast<std::size_t>(out * ninputs)];
    // Drop candidates whose input port was claimed by an earlier output
    // (another VC of the same port won there) — the original per-output
    // rescan filtered these at gather time, after those grants.
    int kept = 0;
    for (int i = 0; i < count; ++i)
      if (crossbar_.input_free(cands[i].idx / vcs_)) cands[kept++] = cands[i];
    count = kept;
    RoundRobinArbiter& arb = sa_arbiters_[static_cast<std::size_t>(out)];
    const int winner = arb.peek_sorted(cands, count);
    if (winner < 0) continue;
    const PortId p = winner / vcs_;
    const VcId v = winner % vcs_;
    InputVc& in = ivc(p, v);
    VcMeta& wm = meta_[static_cast<std::size_t>(winner)];
    // Only a consumed grant advances the round-robin pointer: a winner
    // that could not use its slot would keep its fairness turn.
    arb.consume(winner);
    crossbar_.connect(p, out);

    Flit flit = in.buffer.pop();
    --wm.occ;
    // Return a credit upstream for the freed buffer slot.
    if (p < degree_ && in_links_[static_cast<std::size_t>(p)] != nullptr)
      in_links_[static_cast<std::size_t>(p)]->send_credit(now, v);

    if (out == local_port()) {
      ++stats_.flits_ejected;
      if (flit.tail()) {
        wm.status = static_cast<std::uint8_t>(VcStatus::Idle);
        in.out_port = kInvalidPort;
      }
      ejected.push_back(flit);
      continue;
    }

    if (flit.head())
      stats_.header_updates += MessageInterface::update_on_forward(
          *store_, flit, in.mark_misrouted);

    // The local port has no tracked credits (kEjectionSinkCredits is a
    // sentinel, never a counter) — it must never reach this decrement.
    FR_ASSERT_MSG(out != local_port(), "ejection sink credits decremented");
    OutputVc& o = ovc(out, in.out_vc);
    --o.credits;
    if (o.assigned_flits > 0) --o.assigned_flits;
    if (in.committed > 0) --in.committed;
    Link* link = out_links_[static_cast<std::size_t>(out)];
    FR_ASSERT_MSG(link != nullptr, "active VC aimed at an unconnected port");
    link->send_flit(now, in.out_vc, flit);
    ++stats_.flits_forwarded;

    if (flit.tail()) {
      o.owned = false;
      o.owner_slot = kInvalidPacketSlot;
      wm.status = static_cast<std::uint8_t>(VcStatus::Idle);
      in.out_port = kInvalidPort;
      in.committed = 0;
    }
  }
}

void Router::step(Cycle now, std::vector<Flit>& ejected,
                  std::vector<Flit>& dropped) {
  // Truncation work is rare (only after a live fault), so the drain stage
  // is gated on the store's poisoned-live count and costs nothing in the
  // fault-free steady state.
  poison_active_ = store_->poisoned_live() != 0;
  accept_arrivals(now);
  if (poison_active_) stage_drain_poisoned(now, dropped);
  stage_sa_st(now, ejected);  // move established flows first
  stage_va();
  stage_rc(now);
}

}  // namespace flexrouter
