// Graph algorithms over a (topology, fault set) pair: BFS distances,
// connectivity, components, BFS spanning trees. These power the spanning-tree
// baseline (Section 2's strawman), the up*/down* escape routing, and the
// purposiveness oracle used by tests and the Figure-2 bench.
#pragma once

#include <vector>

#include "topology/fault_model.hpp"
#include "topology/topology.hpp"

namespace flexrouter {

/// Hop distances from `src` over usable links; -1 where unreachable.
/// Faulty nodes (including a faulty src) get -1.
std::vector<int> bfs_distances(const FaultSet& faults, NodeId src);

/// All-pairs distances; result[a][b] == -1 where unreachable.
std::vector<std::vector<int>> all_pairs_distances(const FaultSet& faults);

bool connected(const FaultSet& faults, NodeId a, NodeId b);

/// Component id per node (-1 for faulty nodes); ids are dense from 0.
std::vector<int> components(const FaultSet& faults);

/// True iff all healthy nodes form one connected component.
bool all_healthy_connected(const FaultSet& faults);

/// BFS spanning tree rooted at `root` over usable links.
struct SpanningTree {
  NodeId root = kInvalidNode;
  /// parent[n] — tree parent (kInvalidNode for root / unreachable nodes).
  std::vector<NodeId> parent;
  /// parent_port[n] — the port on n whose link leads to parent[n].
  std::vector<PortId> parent_port;
  /// BFS level (root = 0, unreachable = -1).
  std::vector<int> level;
  /// BFS visit order rank (root = 0, unreachable = -1). This is the node
  /// ordering used by up*/down* routing.
  std::vector<int> order;

  bool reaches(NodeId n) const {
    return level[static_cast<std::size_t>(n)] >= 0;
  }
};

SpanningTree bfs_spanning_tree(const FaultSet& faults, NodeId root);

/// Pick a deterministic root for tree construction: the healthy node of
/// maximal usable degree (ties to the smallest id). Contract: at least one
/// healthy node exists.
NodeId choose_tree_root(const FaultSet& faults);

}  // namespace flexrouter
