// Topology automorphisms: node permutations that preserve the link
// structure, with the induced per-node port permutation.
//
// The fault-certification engine (ruleanalysis/fault_cert) quotients the
// space of bounded fault sets by these symmetries: two fault sets related
// by an automorphism under which the routing program is provably
// equivariant have identical verdicts, so only one canonical orbit
// representative is re-certified. The group is built by closing a small
// generator set (mesh axis reflections and equal-radix axis swaps,
// hypercube translations and bit swaps) under composition; every element
// is mechanically re-verified against the topology, so a wrong generator
// can never smuggle in an unsound identification.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/topology.hpp"

namespace flexrouter {

/// One automorphism: a node permutation plus the induced port map.
/// `port_map[node * degree + port]` is the port at `node_map[node]` whose
/// link mirrors (node, port). Unconnected ports map to unconnected ports.
struct Automorphism {
  std::vector<NodeId> node_map;
  std::vector<PortId> port_map;

  NodeId map_node(NodeId n) const {
    return node_map[static_cast<std::size_t>(n)];
  }
  PortId map_port(NodeId n, PortId p, PortId degree) const {
    return port_map[static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(degree) +
                    static_cast<std::size_t>(p)];
  }
  /// Image of a directed link endpoint.
  LinkRef map_link(const LinkRef& l, PortId degree) const {
    return {map_node(l.node), map_port(l.node, l.port, degree)};
  }
  bool is_identity() const;
};

Automorphism identity_automorphism(const Topology& topo);

/// True iff `a` is a bijection on nodes whose port map carries every link
/// onto a link (and every unconnected port onto an unconnected port).
bool verify_automorphism(const Topology& topo, const Automorphism& a);

/// f after g: apply(g) then apply(f).
Automorphism compose(const Topology& topo, const Automorphism& f,
                     const Automorphism& g);

/// Generator candidates of Aut(topo) for the topology families the corpus
/// routes: meshes (per-axis reflections, adjacent equal-radix axis swaps)
/// and hypercubes (per-bit translations, adjacent bit swaps). Other
/// topologies get an empty set (the engine then falls back to full fault
/// enumeration). Every returned element is verified.
std::vector<Automorphism> automorphism_generators(const Topology& topo);

/// Close `gens` under composition (always contains the identity). The
/// closure stops at `max_order` elements; `*complete` reports whether the
/// whole group was reached. Elements are keyed by node_map — sufficient for
/// simple topologies, where the port map is determined by the node map.
std::vector<Automorphism> close_group(const Topology& topo,
                                      const std::vector<Automorphism>& gens,
                                      std::size_t max_order, bool* complete);

}  // namespace flexrouter
