// Abstract network topology.
//
// A topology defines the routers (nodes) and the bidirectional links between
// them. Routers expose `degree()` network ports numbered 0..degree()-1; a
// port either connects to a neighbour or is unconnected (mesh borders).
// By convention the local injection/ejection port of a router is port
// `degree()` — it never appears in topology queries, only in the router
// data path.
//
// The routing algorithm is designed for a specific topology (footnote 1 of
// the paper: "the topology is a property of the routing algorithm and not an
// input to it"), so concrete routing algorithms downcast to the concrete
// topology they were designed for.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace flexrouter {

/// One endpoint of a directed channel: the link leaving `node` via `port`.
struct LinkRef {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;

  friend bool operator==(const LinkRef&, const LinkRef&) = default;
  friend auto operator<=>(const LinkRef&, const LinkRef&) = default;
};

class Topology {
 public:
  virtual ~Topology() = default;

  virtual NodeId num_nodes() const = 0;

  /// Number of network ports per router (uniform; unconnected ports allowed).
  virtual PortId degree() const = 0;

  /// Neighbour reached from `node` via `port`; kInvalidNode if the port is
  /// unconnected (e.g. mesh border).
  virtual NodeId neighbor(NodeId node, PortId port) const = 0;

  /// The port on `neighbor(node, port)` whose link leads back to `node`.
  /// Precondition: the port is connected.
  virtual PortId reverse_port(NodeId node, PortId port) const = 0;

  /// Minimal hop distance in the fault-free topology.
  virtual int distance(NodeId a, NodeId b) const = 0;

  virtual std::string name() const = 0;

  /// Local injection/ejection port index.
  PortId local_port() const { return degree(); }

  bool valid_node(NodeId n) const { return n >= 0 && n < num_nodes(); }
  bool valid_port(PortId p) const { return p >= 0 && p < degree(); }

  /// All connected directed channels (node, port), each direction listed.
  std::vector<LinkRef> directed_links() const {
    std::vector<LinkRef> out;
    for (NodeId n = 0; n < num_nodes(); ++n)
      for (PortId p = 0; p < degree(); ++p)
        if (neighbor(n, p) != kInvalidNode) out.push_back({n, p});
    return out;
  }

  /// All bidirectional links, canonicalised so that (node, port) is the
  /// endpoint with the smaller node id (ties impossible: no self links).
  std::vector<LinkRef> undirected_links() const {
    std::vector<LinkRef> out;
    for (NodeId n = 0; n < num_nodes(); ++n)
      for (PortId p = 0; p < degree(); ++p) {
        const NodeId m = neighbor(n, p);
        if (m != kInvalidNode && n < m) out.push_back({n, p});
      }
    return out;
  }

  std::size_t num_undirected_links() const { return undirected_links().size(); }

  /// Diameter of the fault-free topology (max over node pairs of distance).
  int diameter() const {
    int d = 0;
    for (NodeId a = 0; a < num_nodes(); ++a)
      for (NodeId b = 0; b < num_nodes(); ++b) d = std::max(d, distance(a, b));
    return d;
  }
};

}  // namespace flexrouter
