// Binary hypercube of dimension d (2^d nodes). Substrate for ROUTE_C.
// Port i flips address bit i.
#pragma once

#include "common/bitops.hpp"
#include "topology/topology.hpp"

namespace flexrouter {

class Hypercube final : public Topology {
 public:
  explicit Hypercube(int dimension);

  NodeId num_nodes() const override { return NodeId{1} << dimension_; }
  PortId degree() const override { return dimension_; }
  NodeId neighbor(NodeId node, PortId port) const override;
  PortId reverse_port(NodeId node, PortId port) const override;
  int distance(NodeId a, NodeId b) const override;
  std::string name() const override;

  int dimension() const { return dimension_; }

  /// Bit positions where a and b differ (the dimensions still to correct).
  static std::uint32_t differing_dims(NodeId a, NodeId b) {
    return static_cast<std::uint32_t>(a ^ b);
  }

 private:
  int dimension_;
};

}  // namespace flexrouter
