// k-ary n-dimensional mesh. The 2-D case is the substrate for NARA/NAFTA.
//
// Port numbering: port 2*dim + 0 goes in the positive direction of `dim`,
// port 2*dim + 1 in the negative direction. For 2-D meshes this matches the
// Compass enum: East=+x=0, West=-x=1, North=+y=2, South=-y=3.
#pragma once

#include <vector>

#include "topology/topology.hpp"

namespace flexrouter {

class Mesh final : public Topology {
 public:
  /// radix[i] = number of nodes along dimension i; all radices >= 2.
  explicit Mesh(std::vector<int> radix);

  /// Convenience: width x height 2-D mesh.
  static Mesh two_d(int width, int height) { return Mesh({width, height}); }

  NodeId num_nodes() const override { return num_nodes_; }
  PortId degree() const override {
    return static_cast<PortId>(2 * radix_.size());
  }
  NodeId neighbor(NodeId node, PortId port) const override;
  PortId reverse_port(NodeId node, PortId port) const override;
  int distance(NodeId a, NodeId b) const override;
  std::string name() const override;

  int dims() const { return static_cast<int>(radix_.size()); }
  int radix(int dim) const;

  /// Coordinate of `node` along `dim`.
  int coord(NodeId node, int dim) const;
  std::vector<int> coords(NodeId node) const;
  NodeId node_at(const std::vector<int>& coords) const;

  /// 2-D helpers (require dims() == 2).
  int x_of(NodeId node) const { return coord(node, 0); }
  int y_of(NodeId node) const { return coord(node, 1); }
  NodeId at(int x, int y) const { return node_at({x, y}); }

  static constexpr int dim_of_port(PortId p) { return p / 2; }
  static constexpr bool port_is_negative(PortId p) { return (p % 2) != 0; }
  static constexpr PortId port_toward(int dim, bool negative) {
    return static_cast<PortId>(2 * dim + (negative ? 1 : 0));
  }

 private:
  std::vector<int> radix_;
  std::vector<NodeId> stride_;  // stride_[i] = product of radix_[0..i-1]
  NodeId num_nodes_;
};

}  // namespace flexrouter
