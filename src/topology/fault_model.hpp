// Fault model implementing the paper's assumptions (Section 2.1):
//   i)  a link is either faulty-and-known or transmits without destruction;
//       links are bidirectional and both directions fail together,
//   ii) a router node either works or fails, and adjacent nodes know,
//   iii) no messages are sent to disconnected or faulty destinations,
//   iv) no message is affected during the diagnosis phase after a failure
//       (the simulator models this as a quiescent reconfiguration window),
//   v)  multiple faults are allowed.
//
// FaultSet is the ground truth ("known as such"); routing algorithms consume
// it either directly (local neighbour queries only, mimicking per-node fault
// registers) or through their own propagated state (NAFTA/ROUTE_C states).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "topology/topology.hpp"

namespace flexrouter {

class FaultSet {
 public:
  explicit FaultSet(const Topology& topo);

  const Topology& topology() const { return *topo_; }

  /// Mark the bidirectional link (node, port) faulty. Both directions fail
  /// together (assumption i). No-op on an unconnected port is a contract
  /// violation. Idempotent otherwise.
  void fail_link(NodeId node, PortId port);

  /// Mark a router node faulty (assumption ii). All its links become
  /// unusable implicitly.
  void fail_node(NodeId node);

  /// Repair — used by reconfiguration experiments and the chaos-campaign
  /// repair regime.
  void repair_link(NodeId node, PortId port);
  void repair_node(NodeId node);
  void clear();

  /// Fail-slow dimension, orthogonal to dead/alive: the bidirectional link
  /// at (node, port) carries at most one flit per `factor` cycles
  /// (factor >= 2); factor == 1 erases the entry (full speed). Degradation
  /// never makes a link unusable, so it does NOT bump the epoch or rebuild
  /// the usability table — routing state stays valid, only the data plane
  /// and the load-measurement units see the slowdown.
  void degrade_link(NodeId node, PortId port, int factor);
  /// Current degradation factor (1 == full speed).
  int link_degrade_factor(NodeId node, PortId port) const;
  /// All degraded links in canonical form with their factors.
  std::vector<std::pair<LinkRef, int>> degraded_links() const;

  bool node_faulty(NodeId node) const;
  bool node_ok(NodeId node) const { return !node_faulty(node); }

  /// True iff the link hardware itself is marked faulty (independent of the
  /// endpoint nodes' health).
  bool link_marked_faulty(NodeId node, PortId port) const;

  /// True iff a message can traverse (node, port): the port is connected,
  /// the link is not faulty and both endpoints are healthy. This is the
  /// router pipeline's innermost fault query, so it is a flat table lookup;
  /// the table is rebuilt on every (rare) fault mutation.
  bool link_usable(NodeId node, PortId port) const {
    FR_REQUIRE(topo_->valid_node(node));
    FR_REQUIRE(topo_->valid_port(port));
    return usable_[static_cast<std::size_t>(node) *
                       static_cast<std::size_t>(topo_->degree()) +
                   static_cast<std::size_t>(port)] != 0;
  }

  /// Connected, healthy neighbours of `node`.
  std::vector<PortId> usable_ports(NodeId node) const;
  int usable_degree(NodeId node) const;

  int num_node_faults() const { return num_node_faults_; }
  int num_link_faults() const {
    return static_cast<int>(faulty_links_.size());
  }
  bool fault_free() const {
    return num_node_faults_ == 0 && faulty_links_.empty();
  }

  /// Monotonically increasing epoch, bumped on every change. Routing state
  /// recomputed during the diagnosis phase caches this to detect staleness.
  std::uint64_t epoch() const { return epoch_; }

  /// Canonical undirected representation of all faulty links.
  std::vector<LinkRef> faulty_links() const;
  std::vector<NodeId> faulty_nodes() const;

 private:
  /// Canonical key: endpoint with smaller node id.
  LinkRef canonical(NodeId node, PortId port) const;

  /// Recompute the flattened [node * degree + port] usability table after a
  /// mutation. O(nodes * degree * log faults) — mutations happen only in
  /// quiesced reconfiguration windows (assumption iv), never per cycle.
  void rebuild_usable();

  const Topology* topo_;
  std::vector<char> node_faulty_;
  std::vector<char> usable_;
  std::set<LinkRef> faulty_links_;
  std::map<LinkRef, int> degraded_links_;
  int num_node_faults_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace flexrouter
