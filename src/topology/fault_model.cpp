#include "topology/fault_model.hpp"

#include <algorithm>

namespace flexrouter {

FaultSet::FaultSet(const Topology& topo)
    : topo_(&topo),
      node_faulty_(static_cast<std::size_t>(topo.num_nodes()), 0) {
  rebuild_usable();
}

void FaultSet::rebuild_usable() {
  const auto degree = static_cast<std::size_t>(topo_->degree());
  usable_.assign(static_cast<std::size_t>(topo_->num_nodes()) * degree, 0);
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    if (node_faulty_[static_cast<std::size_t>(n)]) continue;
    for (PortId p = 0; p < topo_->degree(); ++p) {
      const NodeId other = topo_->neighbor(n, p);
      if (other == kInvalidNode) continue;
      if (node_faulty_[static_cast<std::size_t>(other)]) continue;
      if (faulty_links_.count(canonical(n, p)) > 0) continue;
      usable_[static_cast<std::size_t>(n) * degree +
              static_cast<std::size_t>(p)] = 1;
    }
  }
}

LinkRef FaultSet::canonical(NodeId node, PortId port) const {
  FR_REQUIRE(topo_->valid_node(node));
  FR_REQUIRE(topo_->valid_port(port));
  const NodeId other = topo_->neighbor(node, port);
  FR_REQUIRE_MSG(other != kInvalidNode, "fault on unconnected port");
  if (node < other) return {node, port};
  return {other, topo_->reverse_port(node, port)};
}

void FaultSet::fail_link(NodeId node, PortId port) {
  if (faulty_links_.insert(canonical(node, port)).second) {
    ++epoch_;
    rebuild_usable();
  }
}

void FaultSet::fail_node(NodeId node) {
  FR_REQUIRE(topo_->valid_node(node));
  if (!node_faulty_[static_cast<std::size_t>(node)]) {
    node_faulty_[static_cast<std::size_t>(node)] = 1;
    ++num_node_faults_;
    ++epoch_;
    rebuild_usable();
  }
}

void FaultSet::repair_link(NodeId node, PortId port) {
  if (faulty_links_.erase(canonical(node, port)) > 0) {
    ++epoch_;
    rebuild_usable();
  }
}

void FaultSet::repair_node(NodeId node) {
  FR_REQUIRE(topo_->valid_node(node));
  if (node_faulty_[static_cast<std::size_t>(node)]) {
    node_faulty_[static_cast<std::size_t>(node)] = 0;
    --num_node_faults_;
    ++epoch_;
    rebuild_usable();
  }
}

void FaultSet::clear() {
  std::fill(node_faulty_.begin(), node_faulty_.end(), 0);
  faulty_links_.clear();
  degraded_links_.clear();
  num_node_faults_ = 0;
  ++epoch_;
  rebuild_usable();
}

void FaultSet::degrade_link(NodeId node, PortId port, int factor) {
  FR_REQUIRE_MSG(factor >= 1, "degradation factor must be >= 1");
  // No epoch bump, no usable_ rebuild: a degraded link is still usable, so
  // cached routing decisions stay valid and no reconfiguration is needed.
  if (factor == 1) {
    degraded_links_.erase(canonical(node, port));
  } else {
    degraded_links_[canonical(node, port)] = factor;
  }
}

int FaultSet::link_degrade_factor(NodeId node, PortId port) const {
  const auto it = degraded_links_.find(canonical(node, port));
  return it == degraded_links_.end() ? 1 : it->second;
}

std::vector<std::pair<LinkRef, int>> FaultSet::degraded_links() const {
  return {degraded_links_.begin(), degraded_links_.end()};
}

bool FaultSet::node_faulty(NodeId node) const {
  FR_REQUIRE(topo_->valid_node(node));
  return node_faulty_[static_cast<std::size_t>(node)] != 0;
}

bool FaultSet::link_marked_faulty(NodeId node, PortId port) const {
  FR_REQUIRE(topo_->valid_node(node));
  FR_REQUIRE(topo_->valid_port(port));
  if (topo_->neighbor(node, port) == kInvalidNode) return false;
  return faulty_links_.count(canonical(node, port)) > 0;
}

std::vector<PortId> FaultSet::usable_ports(NodeId node) const {
  std::vector<PortId> out;
  for (PortId p = 0; p < topo_->degree(); ++p)
    if (link_usable(node, p)) out.push_back(p);
  return out;
}

int FaultSet::usable_degree(NodeId node) const {
  int d = 0;
  for (PortId p = 0; p < topo_->degree(); ++p)
    if (link_usable(node, p)) ++d;
  return d;
}

std::vector<LinkRef> FaultSet::faulty_links() const {
  return {faulty_links_.begin(), faulty_links_.end()};
}

std::vector<NodeId> FaultSet::faulty_nodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < topo_->num_nodes(); ++n)
    if (node_faulty_[static_cast<std::size_t>(n)]) out.push_back(n);
  return out;
}

}  // namespace flexrouter
