#include "topology/mesh.hpp"

#include <cstdlib>
#include <sstream>

namespace flexrouter {

Mesh::Mesh(std::vector<int> radix) : radix_(std::move(radix)) {
  FR_REQUIRE_MSG(!radix_.empty(), "mesh needs at least one dimension");
  NodeId n = 1;
  stride_.reserve(radix_.size());
  for (const int r : radix_) {
    FR_REQUIRE_MSG(r >= 2, "mesh radix must be >= 2");
    stride_.push_back(n);
    n *= r;
  }
  num_nodes_ = n;
}

int Mesh::radix(int dim) const {
  FR_REQUIRE(dim >= 0 && dim < dims());
  return radix_[static_cast<std::size_t>(dim)];
}

int Mesh::coord(NodeId node, int dim) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(dim >= 0 && dim < dims());
  return static_cast<int>(node / stride_[static_cast<std::size_t>(dim)]) %
         radix_[static_cast<std::size_t>(dim)];
}

std::vector<int> Mesh::coords(NodeId node) const {
  std::vector<int> c(static_cast<std::size_t>(dims()));
  for (int d = 0; d < dims(); ++d) c[static_cast<std::size_t>(d)] = coord(node, d);
  return c;
}

NodeId Mesh::node_at(const std::vector<int>& coords) const {
  FR_REQUIRE(coords.size() == radix_.size());
  NodeId n = 0;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    FR_REQUIRE(coords[d] >= 0 && coords[d] < radix_[d]);
    n += coords[d] * stride_[d];
  }
  return n;
}

NodeId Mesh::neighbor(NodeId node, PortId port) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(valid_port(port));
  const int dim = dim_of_port(port);
  const int c = coord(node, dim);
  if (port_is_negative(port)) {
    if (c == 0) return kInvalidNode;
    return node - stride_[static_cast<std::size_t>(dim)];
  }
  if (c == radix_[static_cast<std::size_t>(dim)] - 1) return kInvalidNode;
  return node + stride_[static_cast<std::size_t>(dim)];
}

PortId Mesh::reverse_port(NodeId node, PortId port) const {
  FR_REQUIRE_MSG(neighbor(node, port) != kInvalidNode,
                 "reverse_port of unconnected port");
  // +dim port on one side pairs with -dim port on the other.
  return port_is_negative(port) ? port - 1 : port + 1;
}

int Mesh::distance(NodeId a, NodeId b) const {
  FR_REQUIRE(valid_node(a) && valid_node(b));
  int d = 0;
  for (int dim = 0; dim < dims(); ++dim)
    d += std::abs(coord(a, dim) - coord(b, dim));
  return d;
}

std::string Mesh::name() const {
  std::ostringstream os;
  os << "mesh(";
  for (std::size_t d = 0; d < radix_.size(); ++d) {
    if (d) os << "x";
    os << radix_[d];
  }
  os << ")";
  return os.str();
}

}  // namespace flexrouter
