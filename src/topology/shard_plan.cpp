#include "topology/shard_plan.hpp"

#include <algorithm>
#include <bit>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace flexrouter {

namespace {

struct GridShape {
  std::vector<int> radix;
};

/// Recursive longest-axis bisection over a coordinate box. The shard count
/// splits proportionally with the cells, so uneven counts (3, 6, ...) still
/// come out balanced within one tile row.
void cut_box(const GridShape& grid, std::vector<int>& lo, std::vector<int>& hi,
             int first_shard, int count, std::vector<int>& out,
             std::vector<NodeId>& stride) {
  if (count == 1) {
    // Assign every node of the box (coordinates are mixed-radix digits over
    // the per-dimension strides).
    std::vector<int> cur = lo;
    for (;;) {
      NodeId n = 0;
      for (std::size_t d = 0; d < cur.size(); ++d)
        n += static_cast<NodeId>(cur[d]) * stride[d];
      out[static_cast<std::size_t>(n)] = first_shard;
      std::size_t d = 0;
      for (; d < cur.size(); ++d) {
        if (++cur[d] < hi[d]) break;
        cur[d] = lo[d];
      }
      if (d == cur.size()) break;
    }
    return;
  }
  // Split the longest axis; ties go to the lowest dimension so the plan is
  // a pure function of (shape, count).
  int axis = 0;
  for (std::size_t d = 1; d < lo.size(); ++d)
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = static_cast<int>(d);
  const int cells = hi[axis] - lo[axis];
  const int c1 = count / 2;
  const int c2 = count - c1;
  // Cells split proportionally to the shard counts, clamped so both halves
  // keep at least one cell per shard (cells >= count is guaranteed by the
  // num_shards <= num_nodes contract plus balanced recursion).
  int l1 = (cells * c1 + count / 2) / count;
  l1 = std::max(l1, c1 > 0 ? 1 : 0);
  l1 = std::min(l1, cells - 1);
  const int mid = lo[axis] + l1;
  const int save_hi = hi[axis];
  hi[axis] = mid;
  cut_box(grid, lo, hi, first_shard, c1, out, stride);
  hi[axis] = save_hi;
  const int save_lo = lo[axis];
  lo[axis] = mid;
  cut_box(grid, lo, hi, first_shard + c1, c2, out, stride);
  lo[axis] = save_lo;
}

std::vector<int> plan_grid(const std::vector<int>& radix, int num_shards) {
  GridShape grid{radix};
  std::vector<NodeId> stride(radix.size());
  NodeId acc = 1;
  for (std::size_t d = 0; d < radix.size(); ++d) {
    stride[d] = acc;
    acc *= static_cast<NodeId>(radix[d]);
  }
  std::vector<int> out(static_cast<std::size_t>(acc), -1);
  std::vector<int> lo(radix.size(), 0);
  std::vector<int> hi = radix;
  cut_box(grid, lo, hi, 0, num_shards, out, stride);
  return out;
}

}  // namespace

ShardPlan plan_shards(const Topology& topo, int num_shards) {
  FR_REQUIRE_MSG(num_shards >= 1 && num_shards <= topo.num_nodes(),
                 "shard count must be in [1, num_nodes]");
  ShardPlan plan;
  plan.num_shards = num_shards;
  const auto n = static_cast<std::size_t>(topo.num_nodes());

  if (const auto* mesh = dynamic_cast<const Mesh*>(&topo)) {
    std::vector<int> radix(static_cast<std::size_t>(mesh->dims()));
    for (int d = 0; d < mesh->dims(); ++d)
      radix[static_cast<std::size_t>(d)] = mesh->radix(d);
    plan.shard_of = plan_grid(radix, num_shards);
    plan.scheme = "mesh-tiles";
  } else if (const auto* torus = dynamic_cast<const Torus*>(&topo)) {
    std::vector<int> radix(static_cast<std::size_t>(torus->dims()));
    for (int d = 0; d < torus->dims(); ++d)
      radix[static_cast<std::size_t>(d)] = torus->radix(d);
    plan.shard_of = plan_grid(radix, num_shards);
    plan.scheme = "mesh-tiles";
  } else if (dynamic_cast<const Hypercube*>(&topo) != nullptr &&
             std::has_single_bit(static_cast<unsigned>(num_shards))) {
    // Top address bits select the shard: each shard is a subcube, so every
    // node keeps all but log2(num_shards) of its neighbours in-shard.
    const int shard_bits = std::countr_zero(static_cast<unsigned>(num_shards));
    const int node_bits =
        std::countr_zero(static_cast<unsigned>(topo.num_nodes()));
    plan.shard_of.resize(n);
    for (NodeId u = 0; u < topo.num_nodes(); ++u)
      plan.shard_of[static_cast<std::size_t>(u)] =
          static_cast<int>(u >> (node_bits - shard_bits));
    plan.scheme = "subcubes";
  } else {
    // Balanced contiguous node-id ranges; always a valid partition.
    plan.shard_of.resize(n);
    for (NodeId u = 0; u < topo.num_nodes(); ++u)
      plan.shard_of[static_cast<std::size_t>(u)] = static_cast<int>(
          (static_cast<std::int64_t>(u) * num_shards) / topo.num_nodes());
    plan.scheme = "ranges";
  }

  plan.nodes.resize(static_cast<std::size_t>(num_shards));
  for (NodeId u = 0; u < topo.num_nodes(); ++u)
    plan.nodes[static_cast<std::size_t>(plan.shard_of[static_cast<std::size_t>(
                   u)])]
        .push_back(u);
  for (const auto& shard_nodes : plan.nodes)
    FR_ASSERT_MSG(!shard_nodes.empty(), "shard plan produced an empty shard");
  return plan;
}

}  // namespace flexrouter
