// Spatial shard planning: partition a topology's nodes into a fixed number
// of shards so the network can step each shard on its own worker while
// keeping cross-shard traffic confined to a small set of boundary links.
//
// The planner is topology-aware. Meshes and tori are cut into axis-aligned
// tiles by recursive longest-axis bisection (quadrant tiles for four shards
// on a square mesh); hypercubes with a power-of-two shard count are cut
// into subcubes on the top address bits. Anything else falls back to
// balanced contiguous node-id ranges — always valid, just with a larger
// boundary. The plan itself carries no execution state: determinism of the
// sharded step comes from the network's barrier protocol, not from which
// nodes land where, so any total partition is correct.
#pragma once

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace flexrouter {

struct ShardPlan {
  int num_shards = 1;
  /// Shard id per node, dense in [0, num_shards).
  std::vector<int> shard_of;
  /// Nodes per shard, ascending; every node appears exactly once.
  std::vector<std::vector<NodeId>> nodes;
  /// Which cutter produced the plan: "mesh-tiles", "subcubes", "ranges".
  std::string scheme;

  int shard(NodeId n) const {
    return shard_of[static_cast<std::size_t>(n)];
  }
};

/// Partition `topo` into `num_shards` non-empty shards. Contract:
/// 1 <= num_shards <= topo.num_nodes().
ShardPlan plan_shards(const Topology& topo, int num_shards);

}  // namespace flexrouter
