#include "topology/hypercube.hpp"

#include <sstream>

namespace flexrouter {

Hypercube::Hypercube(int dimension) : dimension_(dimension) {
  FR_REQUIRE_MSG(dimension >= 1 && dimension <= 20,
                 "hypercube dimension out of supported range [1, 20]");
}

NodeId Hypercube::neighbor(NodeId node, PortId port) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(valid_port(port));
  return node ^ (NodeId{1} << port);
}

PortId Hypercube::reverse_port(NodeId node, PortId port) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(valid_port(port));
  return port;  // flipping bit i from the other side is still port i
}

int Hypercube::distance(NodeId a, NodeId b) const {
  FR_REQUIRE(valid_node(a) && valid_node(b));
  return popcount64(static_cast<std::uint64_t>(a ^ b));
}

std::string Hypercube::name() const {
  std::ostringstream os;
  os << "hypercube(d=" << dimension_ << ")";
  return os.str();
}

}  // namespace flexrouter
