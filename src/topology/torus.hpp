// k-ary n-dimensional torus (mesh with wrap-around links). Used by the
// extension benches; port numbering matches Mesh.
#pragma once

#include <vector>

#include "topology/topology.hpp"

namespace flexrouter {

class Torus final : public Topology {
 public:
  explicit Torus(std::vector<int> radix);

  static Torus two_d(int width, int height) { return Torus({width, height}); }

  NodeId num_nodes() const override { return num_nodes_; }
  PortId degree() const override {
    return static_cast<PortId>(2 * radix_.size());
  }
  NodeId neighbor(NodeId node, PortId port) const override;
  PortId reverse_port(NodeId node, PortId port) const override;
  int distance(NodeId a, NodeId b) const override;
  std::string name() const override;

  int dims() const { return static_cast<int>(radix_.size()); }
  int radix(int dim) const;
  int coord(NodeId node, int dim) const;
  NodeId node_at(const std::vector<int>& coords) const;

 private:
  std::vector<int> radix_;
  std::vector<NodeId> stride_;
  NodeId num_nodes_;
};

}  // namespace flexrouter
