#include "topology/torus.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace flexrouter {

Torus::Torus(std::vector<int> radix) : radix_(std::move(radix)) {
  FR_REQUIRE_MSG(!radix_.empty(), "torus needs at least one dimension");
  NodeId n = 1;
  stride_.reserve(radix_.size());
  for (const int r : radix_) {
    FR_REQUIRE_MSG(r >= 3, "torus radix must be >= 3 (radix-2 wrap links "
                           "would duplicate mesh links)");
    stride_.push_back(n);
    n *= r;
  }
  num_nodes_ = n;
}

int Torus::radix(int dim) const {
  FR_REQUIRE(dim >= 0 && dim < dims());
  return radix_[static_cast<std::size_t>(dim)];
}

int Torus::coord(NodeId node, int dim) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(dim >= 0 && dim < dims());
  return static_cast<int>(node / stride_[static_cast<std::size_t>(dim)]) %
         radix_[static_cast<std::size_t>(dim)];
}

NodeId Torus::node_at(const std::vector<int>& coords) const {
  FR_REQUIRE(coords.size() == radix_.size());
  NodeId n = 0;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    FR_REQUIRE(coords[d] >= 0 && coords[d] < radix_[d]);
    n += coords[d] * stride_[d];
  }
  return n;
}

NodeId Torus::neighbor(NodeId node, PortId port) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(valid_port(port));
  const int dim = port / 2;
  const int r = radix_[static_cast<std::size_t>(dim)];
  const int c = coord(node, dim);
  const int next = (port % 2) ? (c + r - 1) % r : (c + 1) % r;
  return node + (next - c) * stride_[static_cast<std::size_t>(dim)];
}

PortId Torus::reverse_port(NodeId node, PortId port) const {
  FR_REQUIRE(valid_node(node));
  FR_REQUIRE(valid_port(port));
  return (port % 2) ? port - 1 : port + 1;
}

int Torus::distance(NodeId a, NodeId b) const {
  FR_REQUIRE(valid_node(a) && valid_node(b));
  int d = 0;
  for (int dim = 0; dim < dims(); ++dim) {
    const int r = radix_[static_cast<std::size_t>(dim)];
    const int delta = std::abs(coord(a, dim) - coord(b, dim));
    d += std::min(delta, r - delta);
  }
  return d;
}

std::string Torus::name() const {
  std::ostringstream os;
  os << "torus(";
  for (std::size_t d = 0; d < radix_.size(); ++d) {
    if (d) os << "x";
    os << radix_[d];
  }
  os << ")";
  return os.str();
}

}  // namespace flexrouter
