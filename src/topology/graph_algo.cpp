#include "topology/graph_algo.hpp"

#include <deque>

namespace flexrouter {

std::vector<int> bfs_distances(const FaultSet& faults, NodeId src) {
  const Topology& topo = faults.topology();
  FR_REQUIRE(topo.valid_node(src));
  std::vector<int> dist(static_cast<std::size_t>(topo.num_nodes()), -1);
  if (faults.node_faulty(src)) return dist;
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (PortId p = 0; p < topo.degree(); ++p) {
      if (!faults.link_usable(n, p)) continue;
      const NodeId m = topo.neighbor(n, p);
      if (dist[static_cast<std::size_t>(m)] >= 0) continue;
      dist[static_cast<std::size_t>(m)] = dist[static_cast<std::size_t>(n)] + 1;
      queue.push_back(m);
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_distances(const FaultSet& faults) {
  const NodeId n = faults.topology().num_nodes();
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) out.push_back(bfs_distances(faults, i));
  return out;
}

bool connected(const FaultSet& faults, NodeId a, NodeId b) {
  if (a == b) return faults.node_ok(a);
  return bfs_distances(faults, a)[static_cast<std::size_t>(b)] >= 0;
}

std::vector<int> components(const FaultSet& faults) {
  const Topology& topo = faults.topology();
  std::vector<int> comp(static_cast<std::size_t>(topo.num_nodes()), -2);
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    if (faults.node_faulty(n)) comp[static_cast<std::size_t>(n)] = -1;
  int next = 0;
  for (NodeId start = 0; start < topo.num_nodes(); ++start) {
    if (comp[static_cast<std::size_t>(start)] != -2) continue;
    const int id = next++;
    std::deque<NodeId> queue{start};
    comp[static_cast<std::size_t>(start)] = id;
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop_front();
      for (PortId p = 0; p < topo.degree(); ++p) {
        if (!faults.link_usable(n, p)) continue;
        const NodeId m = topo.neighbor(n, p);
        if (comp[static_cast<std::size_t>(m)] != -2) continue;
        comp[static_cast<std::size_t>(m)] = id;
        queue.push_back(m);
      }
    }
  }
  return comp;
}

bool all_healthy_connected(const FaultSet& faults) {
  const auto comp = components(faults);
  int seen = -1;
  for (NodeId n = 0; n < faults.topology().num_nodes(); ++n) {
    const int c = comp[static_cast<std::size_t>(n)];
    if (c < 0) continue;
    if (seen == -1) seen = c;
    if (c != seen) return false;
  }
  return true;
}

SpanningTree bfs_spanning_tree(const FaultSet& faults, NodeId root) {
  const Topology& topo = faults.topology();
  FR_REQUIRE(topo.valid_node(root));
  FR_REQUIRE_MSG(faults.node_ok(root), "spanning tree root is faulty");
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(n, kInvalidNode);
  tree.parent_port.assign(n, kInvalidPort);
  tree.level.assign(n, -1);
  tree.order.assign(n, -1);

  std::deque<NodeId> queue{root};
  tree.level[static_cast<std::size_t>(root)] = 0;
  int rank = 0;
  tree.order[static_cast<std::size_t>(root)] = rank++;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (PortId p = 0; p < topo.degree(); ++p) {
      if (!faults.link_usable(u, p)) continue;
      const NodeId v = topo.neighbor(u, p);
      if (tree.level[static_cast<std::size_t>(v)] >= 0) continue;
      tree.level[static_cast<std::size_t>(v)] =
          tree.level[static_cast<std::size_t>(u)] + 1;
      tree.parent[static_cast<std::size_t>(v)] = u;
      tree.parent_port[static_cast<std::size_t>(v)] = topo.reverse_port(u, p);
      tree.order[static_cast<std::size_t>(v)] = rank++;
      queue.push_back(v);
    }
  }
  return tree;
}

NodeId choose_tree_root(const FaultSet& faults) {
  const Topology& topo = faults.topology();
  NodeId best = kInvalidNode;
  int best_deg = -1;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (faults.node_faulty(n)) continue;
    const int d = faults.usable_degree(n);
    if (d > best_deg) {
      best_deg = d;
      best = n;
    }
  }
  FR_ENSURE_MSG(best != kInvalidNode, "no healthy node for tree root");
  return best;
}

}  // namespace flexrouter
