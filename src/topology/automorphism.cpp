#include "topology/automorphism.hpp"

#include <map>
#include <utility>

#include "common/assert.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace flexrouter {
namespace {

/// Build the port map induced by `node_map` by solving the neighbor
/// equation per (node, port): the image port is the unique port of the
/// image node that leads to the image neighbor. Unconnected ports fall back
/// to a same-index unconnected port when possible. Returns false when no
/// consistent port map exists (node_map is not an automorphism).
bool induce_port_map(const Topology& topo, const std::vector<NodeId>& node_map,
                     std::vector<PortId>& port_map) {
  const PortId degree = topo.degree();
  port_map.assign(static_cast<std::size_t>(topo.num_nodes()) *
                      static_cast<std::size_t>(degree),
                  kInvalidPort);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const NodeId gn = node_map[static_cast<std::size_t>(n)];
    std::vector<bool> used(static_cast<std::size_t>(degree), false);
    // Connected ports first: the image is forced by the image neighbor.
    for (PortId p = 0; p < degree; ++p) {
      const NodeId m = topo.neighbor(n, p);
      if (m == kInvalidNode) continue;
      const NodeId gm = node_map[static_cast<std::size_t>(m)];
      PortId image = kInvalidPort;
      for (PortId q = 0; q < degree; ++q) {
        if (used[static_cast<std::size_t>(q)]) continue;
        if (topo.neighbor(gn, q) == gm) {
          image = q;
          break;
        }
      }
      if (image == kInvalidPort) return false;
      used[static_cast<std::size_t>(image)] = true;
      port_map[static_cast<std::size_t>(n) * static_cast<std::size_t>(degree) +
               static_cast<std::size_t>(p)] = image;
    }
    // Unconnected ports fill the remaining unconnected slots.
    for (PortId p = 0; p < degree; ++p) {
      if (topo.neighbor(n, p) != kInvalidNode) continue;
      PortId image = kInvalidPort;
      for (PortId q = 0; q < degree; ++q) {
        if (used[static_cast<std::size_t>(q)]) continue;
        if (topo.neighbor(gn, q) == kInvalidNode) {
          image = q;
          break;
        }
      }
      if (image == kInvalidPort) return false;
      used[static_cast<std::size_t>(image)] = true;
      port_map[static_cast<std::size_t>(n) * static_cast<std::size_t>(degree) +
               static_cast<std::size_t>(p)] = image;
    }
  }
  return true;
}

/// Wrap a node permutation into a verified Automorphism; returns false when
/// the permutation does not preserve the link structure.
bool make_automorphism(const Topology& topo, std::vector<NodeId> node_map,
                       Automorphism& out) {
  Automorphism a;
  a.node_map = std::move(node_map);
  if (!induce_port_map(topo, a.node_map, a.port_map)) return false;
  if (!verify_automorphism(topo, a)) return false;
  out = std::move(a);
  return true;
}

}  // namespace

bool Automorphism::is_identity() const {
  for (std::size_t i = 0; i < node_map.size(); ++i)
    if (node_map[i] != static_cast<NodeId>(i)) return false;
  return true;
}

Automorphism identity_automorphism(const Topology& topo) {
  Automorphism a;
  a.node_map.resize(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    a.node_map[static_cast<std::size_t>(n)] = n;
  FR_REQUIRE(induce_port_map(topo, a.node_map, a.port_map));
  return a;
}

bool verify_automorphism(const Topology& topo, const Automorphism& a) {
  const PortId degree = topo.degree();
  if (a.node_map.size() != static_cast<std::size_t>(topo.num_nodes()))
    return false;
  if (a.port_map.size() !=
      a.node_map.size() * static_cast<std::size_t>(degree))
    return false;
  std::vector<bool> hit(a.node_map.size(), false);
  for (const NodeId gn : a.node_map) {
    if (!topo.valid_node(gn) || hit[static_cast<std::size_t>(gn)])
      return false;
    hit[static_cast<std::size_t>(gn)] = true;
  }
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (PortId p = 0; p < degree; ++p) {
      const PortId gp = a.map_port(n, p, degree);
      if (!topo.valid_port(gp)) return false;
      const NodeId m = topo.neighbor(n, p);
      const NodeId image = topo.neighbor(a.map_node(n), gp);
      if (m == kInvalidNode) {
        if (image != kInvalidNode) return false;
      } else if (image != a.map_node(m)) {
        return false;
      }
    }
  }
  return true;
}

Automorphism compose(const Topology& topo, const Automorphism& f,
                     const Automorphism& g) {
  const PortId degree = topo.degree();
  Automorphism h;
  h.node_map.resize(g.node_map.size());
  h.port_map.resize(g.port_map.size());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const NodeId gn = g.map_node(n);
    h.node_map[static_cast<std::size_t>(n)] = f.map_node(gn);
    for (PortId p = 0; p < degree; ++p)
      h.port_map[static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(degree) +
                 static_cast<std::size_t>(p)] =
          f.map_port(gn, g.map_port(n, p, degree), degree);
  }
  return h;
}

std::vector<Automorphism> automorphism_generators(const Topology& topo) {
  std::vector<Automorphism> out;
  if (const auto* mesh = dynamic_cast<const Mesh*>(&topo)) {
    const int dims = mesh->dims();
    // Per-axis reflections.
    for (int d = 0; d < dims; ++d) {
      std::vector<NodeId> nm(static_cast<std::size_t>(topo.num_nodes()));
      for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        std::vector<int> c = mesh->coords(n);
        c[static_cast<std::size_t>(d)] =
            mesh->radix(d) - 1 - c[static_cast<std::size_t>(d)];
        nm[static_cast<std::size_t>(n)] = mesh->node_at(c);
      }
      Automorphism a;
      if (make_automorphism(topo, std::move(nm), a)) out.push_back(std::move(a));
    }
    // Adjacent equal-radix axis swaps (generate every radix-respecting
    // axis permutation under closure).
    for (int d = 0; d + 1 < dims; ++d) {
      if (mesh->radix(d) != mesh->radix(d + 1)) continue;
      std::vector<NodeId> nm(static_cast<std::size_t>(topo.num_nodes()));
      for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        std::vector<int> c = mesh->coords(n);
        std::swap(c[static_cast<std::size_t>(d)],
                  c[static_cast<std::size_t>(d + 1)]);
        nm[static_cast<std::size_t>(n)] = mesh->node_at(c);
      }
      Automorphism a;
      if (make_automorphism(topo, std::move(nm), a)) out.push_back(std::move(a));
    }
    return out;
  }
  if (const auto* cube = dynamic_cast<const Hypercube*>(&topo)) {
    const int dim = cube->dimension();
    // Translations (XOR by a unit vector).
    for (int i = 0; i < dim; ++i) {
      std::vector<NodeId> nm(static_cast<std::size_t>(topo.num_nodes()));
      for (NodeId n = 0; n < topo.num_nodes(); ++n)
        nm[static_cast<std::size_t>(n)] = n ^ (NodeId{1} << i);
      Automorphism a;
      if (make_automorphism(topo, std::move(nm), a)) out.push_back(std::move(a));
    }
    // Adjacent bit swaps (generate all bit permutations under closure).
    for (int i = 0; i + 1 < dim; ++i) {
      std::vector<NodeId> nm(static_cast<std::size_t>(topo.num_nodes()));
      for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        const NodeId bi = (n >> i) & 1;
        const NodeId bj = (n >> (i + 1)) & 1;
        NodeId m = n & ~((NodeId{1} << i) | (NodeId{1} << (i + 1)));
        m |= bj << i;
        m |= bi << (i + 1);
        nm[static_cast<std::size_t>(n)] = m;
      }
      Automorphism a;
      if (make_automorphism(topo, std::move(nm), a)) out.push_back(std::move(a));
    }
    return out;
  }
  return out;
}

std::vector<Automorphism> close_group(const Topology& topo,
                                      const std::vector<Automorphism>& gens,
                                      std::size_t max_order, bool* complete) {
  std::vector<Automorphism> group;
  std::map<std::vector<NodeId>, std::size_t> index;
  const Automorphism id = identity_automorphism(topo);
  index.emplace(id.node_map, group.size());
  group.push_back(id);
  bool truncated = false;
  // BFS closure: compose every known element with every generator.
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (const Automorphism& g : gens) {
      if (group.size() >= max_order) {
        // More elements may remain undiscovered beyond the cap.
        truncated = i + 1 < group.size() || true;
        break;
      }
      Automorphism h = compose(topo, g, group[i]);
      if (index.emplace(h.node_map, group.size()).second)
        group.push_back(std::move(h));
    }
    if (group.size() >= max_order) break;
  }
  // The cap was hit iff the loop broke early; otherwise the closure is the
  // whole generated subgroup.
  if (complete != nullptr) *complete = !truncated || group.size() < max_order;
  return group;
}

}  // namespace flexrouter
