// Contract checking in the spirit of the C++ Core Guidelines (I.6, I.8):
// preconditions (FR_REQUIRE), postconditions (FR_ENSURE) and internal
// invariants (FR_ASSERT). Violations throw ContractViolation so that tests
// can assert on them; they are never compiled out, because the simulator is
// a correctness tool first and its hot paths are table lookups, not checks.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace flexrouter {

/// Thrown when a contract (precondition, postcondition, invariant) fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const std::string& msg,
                    std::source_location loc)
      : std::logic_error(format(kind, expr, msg, loc)) {}

 private:
  static std::string format(const char* kind, const char* expr,
                            const std::string& msg, std::source_location loc) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << loc.file_name() << ':'
       << loc.line();
    if (!msg.empty()) os << " — " << msg;
    return os.str();
  }
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::string& msg,
                                       std::source_location loc) {
  throw ContractViolation(kind, expr, msg, loc);
}
}  // namespace detail

}  // namespace flexrouter

#define FR_CONTRACT_IMPL(kind, cond, msg)                        \
  do {                                                           \
    if (!(cond)) {                                               \
      ::flexrouter::detail::contract_fail(                       \
          kind, #cond, (msg), std::source_location::current()); \
    }                                                            \
  } while (false)

/// Precondition: caller passed bad arguments / called in a bad state.
#define FR_REQUIRE(cond) FR_CONTRACT_IMPL("precondition", cond, "")
#define FR_REQUIRE_MSG(cond, msg) FR_CONTRACT_IMPL("precondition", cond, msg)
/// Postcondition: we computed something inconsistent.
#define FR_ENSURE(cond) FR_CONTRACT_IMPL("postcondition", cond, "")
#define FR_ENSURE_MSG(cond, msg) FR_CONTRACT_IMPL("postcondition", cond, msg)
/// Internal invariant.
#define FR_ASSERT(cond) FR_CONTRACT_IMPL("invariant", cond, "")
#define FR_ASSERT_MSG(cond, msg) FR_CONTRACT_IMPL("invariant", cond, msg)

/// Marks unreachable code paths. Expands to a bare [[noreturn]] call (not
/// the conditional FR_CONTRACT_IMPL wrapper) so the compiler sees control
/// flow end here — that silences fallthrough / missing-return diagnostics.
#define FR_UNREACHABLE(msg)                  \
  ::flexrouter::detail::contract_fail(       \
      "unreachable", "false", (msg), std::source_location::current())
