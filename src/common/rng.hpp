// Deterministic, fast pseudo-random number generation.
//
// Simulation results must be bit-reproducible across platforms and runs, so
// we implement the generators ourselves instead of relying on unspecified
// standard-library distributions: xoshiro256** for the stream, SplitMix64
// for seeding, and explicit bounded-integer / unit-double derivations.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace flexrouter {

/// SplitMix64 — used to expand a single seed into generator state, and as
/// the stream generator for pre-materialised event schedules (fault
/// arrivals), where a tiny state and trivially reproducible sequence matter
/// more than xoshiro's period.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound), bound > 0 — Lemire with rejection,
  /// same derivation as Rng::next_below.
  std::uint64_t next_below(std::uint64_t bound) {
    FR_REQUIRE(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) — same 53-bit derivation as Rng::next_unit.
  double next_unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Bit-portable natural logarithm for event-stream generation (x > 0,
/// finite). std::log's last-ulp rounding differs across libm
/// implementations, which is enough to shift an exponential inter-arrival
/// draw across an integer cycle boundary and desynchronise "identical"
/// schedules between platforms. This evaluation uses only IEEE-754
/// +,-,*,/ (all exactly specified) on a frexp decomposition:
///   x = m * 2^e, m in [0.5, 1)   =>   ln x = e*ln2 + 2*atanh((m-1)/(m+1))
/// with the atanh series summed over a fixed iteration count, so every
/// conforming platform computes the identical double.
inline double det_log(double x) {
  FR_REQUIRE(x > 0.0 && std::isfinite(x));
  int e = 0;
  const double m = std::frexp(x, &e);  // exact: pure exponent extraction
  const double t = (m - 1.0) / (m + 1.0);  // in (-1/3, 0]
  const double t2 = t * t;
  double term = t;
  double sum = 0.0;
  for (int k = 1; k <= 37; k += 2) {  // |t| <= 1/3: converges past 1 ulp
    sum += term / static_cast<double>(k);
    term *= t2;
  }
  constexpr double kLn2 = 0x1.62e42fefa39efp-1;  // round-to-nearest ln 2
  return static_cast<double>(e) * kLn2 + 2.0 * sum;
}

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's method with
  /// rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    FR_REQUIRE(bound > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    FR_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_unit() < p; }

  /// Fisher–Yates shuffle of a random-access range.
  // GCC 12 at -O3 reports a maybe-uninitialized false positive inside
  // libstdc++ when swap() is inlined over variant-holding elements
  // (std::vector<Value>); suppress locally so -Werror stays usable.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  template <typename Range>
  void shuffle(Range& r) {
    const auto n = static_cast<std::uint64_t>(r.size());
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = next_below(i);
      using std::swap;
      swap(r[i - 1], r[j]);
    }
  }
#pragma GCC diagnostic pop

  /// Derive an independent child generator (for per-node streams).
  Rng split() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace flexrouter
