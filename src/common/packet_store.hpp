// Slab store for in-flight packet headers.
//
// Wormhole switching (Section 2.2): only the head flit carries routing
// information. The data plane therefore stores each in-flight packet's
// Header exactly once, in a slab owned by the Network and shared by every
// router of that replica (replicas never share a store — the sweep engine's
// determinism contract keeps them isolated). Flits shrink to 8-byte records
// that name their slot; buffers and links move those records by value.
//
// Slots are recycled through a free list: a slot released when the tail
// flit ejects is handed to a later packet. Steady-state traffic therefore
// allocates nothing — the slab only grows while the peak in-flight packet
// count is still rising. Released slots are poisoned (header reset to the
// invalid default) and access to a non-live slot is a contract violation,
// so a stale flit record aliasing a recycled slot is caught, not silently
// misrouted.
//
// Live faults (fault assumption v: faults may arrive during operation)
// add a second kind of poisoning: a *live* slot can be marked poisoned,
// which turns the packet into an orphaned worm whose flits must leave the
// network (dropped hop by hop) instead of being delivered. Every flit of
// every packet is accounted exactly once through note_flit_gone — the call
// that observes the last flit leave owns releasing the slot, which is what
// makes "zero leaked slots after truncation" checkable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace flexrouter {

/// Index of an in-flight packet's header in a PacketStore. Slots are dense
/// and recycled; a PacketId, by contrast, is unique forever.
using PacketSlot = std::uint32_t;
inline constexpr PacketSlot kInvalidPacketSlot = 0xffffffffu;

struct Header {
  PacketId packet = -1;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  /// Total message length in flits (known up front — NAFTA's adaptivity
  /// criterion exploits this).
  int length = 0;
  /// Lifelock handling (Section 3): set once the message leaves a minimal
  /// path due to faults.
  bool misrouted = false;
  /// Hops travelled so far; used with misrouted for lifelock avoidance.
  int path_len = 0;
  /// Header checksum; must be updated whenever the header is modified
  /// ("the hardware has to be capable to support this").
  std::uint32_t checksum = 0;
};

class PacketStore {
 public:
  PacketStore() = default;
  /// Pre-size for an expected peak of simultaneously in-flight packets.
  explicit PacketStore(std::size_t expected_in_flight) {
    entries_.reserve(expected_in_flight);
    free_.reserve(expected_in_flight);
  }

  /// Claim a slot for a new in-flight packet. Reuses a released slot when
  /// one exists; only grows the slab when the free list is empty.
  PacketSlot alloc(const Header& h) {
    PacketSlot s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<PacketSlot>(entries_.size());
      entries_.emplace_back();
    }
    Entry& e = entries_[static_cast<std::size_t>(s)];
    FR_ASSERT_MSG(!e.live, "free list handed out a live slot");
    e.live = true;
    e.poisoned = false;
    e.flits_left = h.length;
    e.hdr = h;
    ++live_;
    return s;
  }

  /// Retire a slot (the last flit left the network). The header is reset
  /// so stale readers trip the live-slot contract instead of aliasing the
  /// slot's next occupant.
  void release(PacketSlot s) {
    Entry& e = checked(s);
    if (e.poisoned) --poisoned_live_;
    e.live = false;
    e.poisoned = false;
    e.hdr = Header{};
    free_.push_back(s);
    --live_;
  }

  /// Mark a live packet as an orphaned worm: its flits are dropped instead
  /// of delivered from here on. Idempotent.
  void poison(PacketSlot s) {
    Entry& e = checked(s);
    if (e.poisoned) return;
    e.poisoned = true;
    ++poisoned_live_;
  }

  bool poisoned(PacketSlot s) const { return checked(s).poisoned; }

  /// Live packets currently marked poisoned. Zero means the data plane has
  /// no truncation work pending, so the per-cycle drain stage can be
  /// skipped entirely.
  std::size_t poisoned_live() const { return poisoned_live_; }

  /// One flit of the packet left the network for good (ejected at the
  /// destination or dropped during truncation). Returns true when it was
  /// the packet's last flit — the caller then owns finalising the packet
  /// and releasing the slot.
  bool note_flit_gone(PacketSlot s) {
    Entry& e = checked(s);
    FR_ASSERT_MSG(e.flits_left > 0, "more flits left the network than sent");
    return --e.flits_left == 0;
  }

  /// Visit every live slot (used to orphan packets whose endpoint died).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::size_t i = 0; i < entries_.size(); ++i)
      if (entries_[i].live) fn(static_cast<PacketSlot>(i), entries_[i].hdr);
  }

  /// The single authoritative header of a live packet. Routers read it on
  /// head flits; only the message interface mutates it.
  Header& header(PacketSlot s) { return checked(s).hdr; }
  const Header& header(PacketSlot s) const { return checked(s).hdr; }

  bool live(PacketSlot s) const {
    return s < entries_.size() && entries_[static_cast<std::size_t>(s)].live;
  }

  /// Packets currently in flight.
  std::size_t live_count() const { return live_; }
  /// High-water mark: total slots ever created (live + recyclable).
  std::size_t slots() const { return entries_.size(); }

 private:
  struct Entry {
    Header hdr;
    int flits_left = 0;  // flits still somewhere in the network
    bool live = false;
    bool poisoned = false;
  };

  Entry& checked(PacketSlot s) {
    FR_REQUIRE_MSG(s < entries_.size(), "packet slot out of range");
    Entry& e = entries_[static_cast<std::size_t>(s)];
    FR_REQUIRE_MSG(e.live, "access to a released packet slot");
    return e;
  }
  const Entry& checked(PacketSlot s) const {
    return const_cast<PacketStore*>(this)->checked(s);
  }

  std::vector<Entry> entries_;
  std::vector<PacketSlot> free_;
  std::size_t live_ = 0;
  std::size_t poisoned_live_ = 0;
};

}  // namespace flexrouter
