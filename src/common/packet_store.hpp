// Slab store for in-flight packet headers.
//
// Wormhole switching (Section 2.2): only the head flit carries routing
// information. The data plane therefore stores each in-flight packet's
// Header exactly once, in a slab owned by the Network and shared by every
// router of that replica (replicas never share a store — the sweep engine's
// determinism contract keeps them isolated). Flits shrink to 8-byte records
// that name their slot; buffers and links move those records by value.
//
// Slots are recycled through a free list: a slot released when the tail
// flit ejects is handed to a later packet. Steady-state traffic therefore
// allocates nothing — the slab only grows while the peak in-flight packet
// count is still rising. Released slots are poisoned (header reset to the
// invalid default) and access to a non-live slot is a contract violation,
// so a stale flit record aliasing a recycled slot is caught, not silently
// misrouted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace flexrouter {

/// Index of an in-flight packet's header in a PacketStore. Slots are dense
/// and recycled; a PacketId, by contrast, is unique forever.
using PacketSlot = std::uint32_t;
inline constexpr PacketSlot kInvalidPacketSlot = 0xffffffffu;

struct Header {
  PacketId packet = -1;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  /// Total message length in flits (known up front — NAFTA's adaptivity
  /// criterion exploits this).
  int length = 0;
  /// Lifelock handling (Section 3): set once the message leaves a minimal
  /// path due to faults.
  bool misrouted = false;
  /// Hops travelled so far; used with misrouted for lifelock avoidance.
  int path_len = 0;
  /// Header checksum; must be updated whenever the header is modified
  /// ("the hardware has to be capable to support this").
  std::uint32_t checksum = 0;
};

class PacketStore {
 public:
  PacketStore() = default;
  /// Pre-size for an expected peak of simultaneously in-flight packets.
  explicit PacketStore(std::size_t expected_in_flight) {
    entries_.reserve(expected_in_flight);
    free_.reserve(expected_in_flight);
  }

  /// Claim a slot for a new in-flight packet. Reuses a released slot when
  /// one exists; only grows the slab when the free list is empty.
  PacketSlot alloc(const Header& h) {
    PacketSlot s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<PacketSlot>(entries_.size());
      entries_.emplace_back();
    }
    Entry& e = entries_[static_cast<std::size_t>(s)];
    FR_ASSERT_MSG(!e.live, "free list handed out a live slot");
    e.live = true;
    e.hdr = h;
    ++live_;
    return s;
  }

  /// Retire a slot (the tail flit left the network). The header is poisoned
  /// so stale readers trip the live-slot contract instead of aliasing the
  /// slot's next occupant.
  void release(PacketSlot s) {
    Entry& e = checked(s);
    e.live = false;
    e.hdr = Header{};
    free_.push_back(s);
    --live_;
  }

  /// The single authoritative header of a live packet. Routers read it on
  /// head flits; only the message interface mutates it.
  Header& header(PacketSlot s) { return checked(s).hdr; }
  const Header& header(PacketSlot s) const { return checked(s).hdr; }

  bool live(PacketSlot s) const {
    return s < entries_.size() && entries_[static_cast<std::size_t>(s)].live;
  }

  /// Packets currently in flight.
  std::size_t live_count() const { return live_; }
  /// High-water mark: total slots ever created (live + recyclable).
  std::size_t slots() const { return entries_.size(); }

 private:
  struct Entry {
    Header hdr;
    bool live = false;
  };

  Entry& checked(PacketSlot s) {
    FR_REQUIRE_MSG(s < entries_.size(), "packet slot out of range");
    Entry& e = entries_[static_cast<std::size_t>(s)];
    FR_REQUIRE_MSG(e.live, "access to a released packet slot");
    return e;
  }
  const Entry& checked(PacketSlot s) const {
    return const_cast<PacketStore*>(this)->checked(s);
  }

  std::vector<Entry> entries_;
  std::vector<PacketSlot> free_;
  std::size_t live_ = 0;
};

}  // namespace flexrouter
