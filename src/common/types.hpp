// Fundamental vocabulary types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace flexrouter {

/// Index of a node (router + attached processing element) in a topology.
using NodeId = std::int32_t;
/// Index of a router port. Port 0..degree-1 are network ports; the local
/// injection/ejection port is `degree` by convention (see Topology docs).
using PortId = std::int32_t;
/// Index of a virtual channel on a physical link.
using VcId = std::int32_t;
/// Simulation time in router clock cycles.
using Cycle = std::int64_t;
/// Unique, monotonically increasing packet identifier.
using PacketId = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PortId kInvalidPort = -1;
inline constexpr VcId kInvalidVc = -1;

/// Compass directions for 2-D topologies. Values double as port indices on
/// mesh/torus routers (East=0, West=1, North=2, South=3, Local=4).
enum class Compass : PortId {
  East = 0,
  West = 1,
  North = 2,
  South = 3,
  Local = 4,
};

inline constexpr PortId port_of(Compass c) { return static_cast<PortId>(c); }

/// Opposite compass direction; Local maps to Local.
inline constexpr Compass opposite(Compass c) {
  switch (c) {
    case Compass::East: return Compass::West;
    case Compass::West: return Compass::East;
    case Compass::North: return Compass::South;
    case Compass::South: return Compass::North;
    case Compass::Local: return Compass::Local;
  }
  return Compass::Local;
}

inline constexpr const char* to_string(Compass c) {
  switch (c) {
    case Compass::East: return "east";
    case Compass::West: return "west";
    case Compass::North: return "north";
    case Compass::South: return "south";
    case Compass::Local: return "local";
  }
  return "?";
}

}  // namespace flexrouter
