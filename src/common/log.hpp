// Minimal leveled logger. Simulation code logs through FR_LOG so tests can
// silence output and examples can turn on tracing.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace flexrouter {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (nullptr restores stderr).
  void set_sink(std::ostream* sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::ostream* sink_ = nullptr;
};

const char* to_string(LogLevel level);

}  // namespace flexrouter

#define FR_LOG(level, expr)                                              \
  do {                                                                   \
    auto& fr_logger = ::flexrouter::Logger::instance();                  \
    if (fr_logger.enabled(level)) {                                      \
      std::ostringstream fr_log_os;                                      \
      fr_log_os << expr;                                                 \
      fr_logger.write(level, fr_log_os.str());                           \
    }                                                                    \
  } while (false)

#define FR_TRACE(expr) FR_LOG(::flexrouter::LogLevel::Trace, expr)
#define FR_DEBUG(expr) FR_LOG(::flexrouter::LogLevel::Debug, expr)
#define FR_INFO(expr) FR_LOG(::flexrouter::LogLevel::Info, expr)
#define FR_WARN(expr) FR_LOG(::flexrouter::LogLevel::Warn, expr)
#define FR_ERROR(expr) FR_LOG(::flexrouter::LogLevel::Error, expr)
