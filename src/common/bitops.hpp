// Small bit-manipulation helpers used by the rule compiler's table sizing
// and the hypercube topology.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace flexrouter {

/// Number of bits needed to represent `count` distinct values (>=1).
/// ceil(log2(count)) with bits_for(1) == 0.
inline constexpr int bits_for(std::uint64_t count) {
  FR_REQUIRE(count >= 1);
  return count == 1 ? 0 : 64 - std::countl_zero(count - 1);
}

/// ceil(log2(x)) for x >= 1.
inline constexpr int log2_ceil(std::uint64_t x) {
  FR_REQUIRE(x >= 1);
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// floor(log2(x)) for x >= 1.
inline constexpr int log2_floor(std::uint64_t x) {
  FR_REQUIRE(x >= 1);
  return 63 - std::countl_zero(x);
}

inline constexpr bool is_pow2(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

inline constexpr int popcount64(std::uint64_t x) { return std::popcount(x); }

}  // namespace flexrouter
