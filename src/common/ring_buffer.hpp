// Pooled FIFO ring buffer: a power-of-two circular array that never shrinks,
// so a queue that repeatedly fills and drains (per-node injection queues,
// per-cycle scratch) settles into a fixed allocation instead of the
// node-churn of std::deque.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace flexrouter {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  /// Grow the backing store to hold at least `n` elements (never shrinks).
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(n);
  }

  const T& front() const {
    FR_REQUIRE_MSG(count_ > 0, "front() of empty RingBuffer");
    return buf_[head_];
  }

  T& front() {
    FR_REQUIRE_MSG(count_ > 0, "front() of empty RingBuffer");
    return buf_[head_];
  }

  /// Element `i` positions behind the front (0 == front()).
  const T& at(std::size_t i) const {
    FR_REQUIRE(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(const T& v) {
    if (count_ == buf_.size()) regrow(count_ + 1);
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
  }

  void push_back(T&& v) {
    if (count_ == buf_.size()) regrow(count_ + 1);
    buf_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  void pop_front() {
    FR_REQUIRE_MSG(count_ > 0, "pop_front() of empty RingBuffer");
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Drop all elements; capacity (the pool) is retained.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void regrow(std::size_t need) {
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < need) cap *= 2;
    std::vector<T> fresh(cap);
    for (std::size_t i = 0; i < count_; ++i)
      fresh[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(fresh);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace flexrouter
