#include "common/alloc_counter.hpp"

#ifdef FLEXROUTER_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::int64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    if (void* p = std::malloc(size ? size : 1)) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
      return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}
}  // namespace

// Global replacement operators: one definition per program, so this lives
// in the core library and covers every translation unit, tests included.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace flexrouter {
std::int64_t heap_alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
bool heap_alloc_counting_enabled() { return true; }
}  // namespace flexrouter

#else  // !FLEXROUTER_COUNT_ALLOCS

namespace flexrouter {
std::int64_t heap_alloc_count() { return 0; }
bool heap_alloc_counting_enabled() { return false; }
}  // namespace flexrouter

#endif
