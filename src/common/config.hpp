// Key-value configuration, BookSim-style: `key = value;` lines with
// comments, parsed from strings or files, with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flexrouter {

class Config {
 public:
  Config() = default;

  /// Parse `key = value` pairs separated by ';' or newlines. '#' and '//'
  /// start comments. Values may be quoted strings, numbers, or bare words.
  static Config parse(const std::string& text);
  static Config from_file(const std::string& path);

  void set(const std::string& key, std::string value);
  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required variants: throw ContractViolation if missing/malformed.
  std::string require_string(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// Comma-separated integer list, e.g. `faults = 0,1,2,4`.
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  /// Merge `other` over this config (other wins).
  Config overridden_by(const Config& other) const;

  std::vector<std::string> keys() const;
  std::string to_string() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace flexrouter
