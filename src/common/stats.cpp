#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace flexrouter {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  FR_REQUIRE_MSG(count_ > 0, "min() of empty stats");
  return min_;
}

double StreamingStats::max() const {
  FR_REQUIRE_MSG(count_ > 0, "max() of empty stats");
  return max_;
}

std::string StreamingStats::summary() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ > 0) {
    os << " mean=" << mean() << " sd=" << stddev() << " min=" << min_
       << " max=" << max_;
  }
  return os.str();
}

Histogram::Histogram(double lo, double hi, int bins, bool keep_samples)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0),
      keep_samples_(keep_samples) {
  FR_REQUIRE(hi > lo);
  FR_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  ++count_;
  if (keep_samples_) {
    samples_.push_back(x);
    sorted_ = false;
  }
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp rounding at hi edge
    ++counts_[bin];
  }
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  samples_.clear();
  sorted_ = true;
}

std::int64_t Histogram::bin_count(int bin) const {
  FR_REQUIRE(bin >= 0 && bin < bins());
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_lo(int bin) const { return lo_ + bin * bin_width_; }
double Histogram::bin_hi(int bin) const { return lo_ + (bin + 1) * bin_width_; }

double Histogram::percentile(double p) const {
  FR_REQUIRE(p >= 0.0 && p <= 100.0);
  FR_REQUIRE_MSG(count_ > 0, "percentile of empty histogram");
  if (keep_samples_) {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto i = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(i);
    if (i + 1 >= samples_.size()) return samples_.back();
    return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
  }
  // Interpolate within bins; underflow/overflow map to the range edges.
  const auto target =
      static_cast<std::int64_t>(p / 100.0 * static_cast<double>(count_));
  std::int64_t seen = underflow_;
  if (target < seen) return lo_;
  for (int b = 0; b < bins(); ++b) {
    const auto c = counts_[static_cast<std::size_t>(b)];
    if (seen + c > target && c > 0) {
      const double frac =
          static_cast<double>(target - seen) / static_cast<double>(c);
      return bin_lo(b) + frac * bin_width_;
    }
    seen += c;
  }
  return hi_;
}

std::string Histogram::ascii_render(int width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (int b = 0; b < bins(); ++b) {
    const auto c = counts_[static_cast<std::size_t>(b)];
    const int bar =
        static_cast<int>(static_cast<double>(c) / static_cast<double>(peak) *
                         width);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") " << std::string(
        static_cast<std::size_t>(bar), '#')
       << " " << c << "\n";
  }
  return os.str();
}

}  // namespace flexrouter
