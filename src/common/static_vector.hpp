// Fixed-capacity inline vector.
//
// Router hot paths build small candidate lists every cycle (output ports,
// virtual channels). A heap-allocating std::vector there dominates the
// profile, so candidate sets use this POD-friendly container instead.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>

#include "common/assert.hpp"

namespace flexrouter {

template <typename T, std::size_t N>
class StaticVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr StaticVector() {}
  constexpr StaticVector(std::initializer_list<T> init) {
    FR_REQUIRE(init.size() <= N);
    for (const T& v : init) data_[size_++] = v;
  }

  // Copy only the live prefix: decision caches copy these containers on
  // every hit, and N is sized for the worst case, not the common one.
  // The tail stays unspecified — no accessor reaches past size_.
  constexpr StaticVector(const StaticVector& o) : size_(o.size_) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = o.data_[i];
  }
  constexpr StaticVector& operator=(const StaticVector& o) {
    size_ = o.size_;
    for (std::size_t i = 0; i < size_; ++i) data_[i] = o.data_[i];
    return *this;
  }

  constexpr void push_back(const T& v) {
    FR_REQUIRE_MSG(size_ < N, "StaticVector overflow");
    data_[size_++] = v;
  }

  /// Set the size to n and hand back the storage for the caller to fill —
  /// one bounds check for a whole batch instead of one per push_back
  /// (AOT candidate replay). The caller must write all n slots; elements
  /// past the old size are default-lived until then (POD use only).
  constexpr T* resize_for_overwrite(std::size_t n) {
    FR_REQUIRE_MSG(n <= N, "StaticVector overflow");
    size_ = n;
    return data_.data();
  }

  template <typename... Args>
  constexpr T& emplace_back(Args&&... args) {
    FR_REQUIRE_MSG(size_ < N, "StaticVector overflow");
    data_[size_] = T{static_cast<Args&&>(args)...};
    return data_[size_++];
  }

  constexpr void pop_back() {
    FR_REQUIRE(size_ > 0);
    --size_;
  }

  constexpr void clear() { size_ = 0; }

  /// Remove element at index i by swapping with the last (O(1), reorders).
  constexpr void swap_erase(std::size_t i) {
    FR_REQUIRE(i < size_);
    data_[i] = data_[size_ - 1];
    --size_;
  }

  constexpr T& operator[](std::size_t i) {
    FR_REQUIRE(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    FR_REQUIRE(i < size_);
    return data_[i];
  }

  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr std::size_t size() const { return size_; }
  static constexpr std::size_t capacity() { return N; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr bool full() const { return size_ == N; }

  constexpr iterator begin() { return data_.data(); }
  constexpr iterator end() { return data_.data() + size_; }
  constexpr const_iterator begin() const { return data_.data(); }
  constexpr const_iterator end() const { return data_.data() + size_; }

  constexpr bool contains(const T& v) const {
    for (std::size_t i = 0; i < size_; ++i)
      if (data_[i] == v) return true;
    return false;
  }

  friend constexpr bool operator==(const StaticVector& a,
                                   const StaticVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (!(a.data_[i] == b.data_[i])) return false;
    return true;
  }

 private:
  std::array<T, N> data_;  // ctors initialize the live prefix
  std::size_t size_ = 0;
};

}  // namespace flexrouter
