// Streaming statistics and histograms for simulation metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flexrouter {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  std::int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  std::string summary() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow bins, plus an
/// exact-percentile mode that records raw samples (used for latency tails).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins, bool keep_samples = false);

  void add(double x);
  void reset();

  std::int64_t count() const { return count_; }
  std::int64_t bin_count(int bin) const;
  int bins() const { return static_cast<int>(counts_.size()); }
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }

  /// Exact percentile if samples are kept, otherwise interpolated from bins.
  /// p in [0, 100].
  double percentile(double p) const;

  std::string ascii_render(int width = 50) const;

 private:
  double lo_, hi_;
  double bin_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t count_ = 0;
  bool keep_samples_;
  mutable std::vector<double> samples_;  // sorted lazily by percentile()
  mutable bool sorted_ = true;
};

}  // namespace flexrouter
