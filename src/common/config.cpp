#include "common/config.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace flexrouter {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& line) {
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') in_quote = !in_quote;
    if (in_quote) continue;
    if (c == '#') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
      return line.substr(0, i);
  }
  return line;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::string normalized = text;
  for (char& c : normalized)
    if (c == ';') c = '\n';
  std::istringstream in(normalized);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = trim(strip_comment(line));
    if (line.empty()) continue;
    const auto eq = line.find('=');
    FR_REQUIRE_MSG(eq != std::string::npos,
                   "config line " + std::to_string(lineno) +
                       " has no '=': " + line);
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    FR_REQUIRE_MSG(!key.empty(), "empty config key");
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
      value = value.substr(1, value.size() - 2);
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  FR_REQUIRE_MSG(in.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (...) {
    FR_REQUIRE_MSG(false, "config key '" + key + "' is not an int: " + *v);
  }
  return fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (...) {
    FR_REQUIRE_MSG(false, "config key '" + key + "' is not a double: " + *v);
  }
  return fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  FR_REQUIRE_MSG(false, "config key '" + key + "' is not a bool: " + *v);
  return fallback;
}

std::string Config::require_string(const std::string& key) const {
  const auto v = raw(key);
  FR_REQUIRE_MSG(v.has_value(), "missing required config key '" + key + "'");
  return *v;
}

std::int64_t Config::require_int(const std::string& key) const {
  FR_REQUIRE_MSG(contains(key), "missing required config key '" + key + "'");
  return get_int(key, 0);
}

double Config::require_double(const std::string& key) const {
  FR_REQUIRE_MSG(contains(key), "missing required config key '" + key + "'");
  return get_double(key, 0.0);
}

std::vector<std::int64_t> Config::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::istringstream in(*v);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    try {
      out.push_back(std::stoll(item));
    } catch (...) {
      FR_REQUIRE_MSG(false,
                     "config key '" + key + "' has non-int element: " + item);
    }
  }
  return out;
}

Config Config::overridden_by(const Config& other) const {
  Config merged = *this;
  for (const auto& [k, v] : other.values_) merged.values_[k] = v;
  return merged;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << ";\n";
  return os.str();
}

}  // namespace flexrouter
