// Heap-allocation counter for the zero-allocation regression guard.
//
// When the build defines FLEXROUTER_COUNT_ALLOCS, every global operator new
// increments a process-wide counter; sampling it around a window of
// simulator cycles proves the steady-state flit path never touches the
// heap (bench/sim_throughput --smoke asserts this in CI). In normal builds
// the counter is a stub that always reads zero, so callers can keep the
// sampling code unconditionally compiled.
#pragma once

#include <cstdint>

namespace flexrouter {

/// Total global operator-new calls so far (0 when counting is disabled).
std::int64_t heap_alloc_count();

/// True when the build actually counts allocations.
bool heap_alloc_counting_enabled();

}  // namespace flexrouter
