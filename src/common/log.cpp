#include "common/log.hpp"

#include <iostream>

namespace flexrouter {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) { sink_ = sink; }

void Logger::write(LogLevel level, const std::string& message) {
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << "[" << to_string(level) << "] " << message << "\n";
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace flexrouter
