// rulelint — static analyzer for rule programs.
//
// With no file arguments, lints the whole built-in rule-base corpus
// (completeness, shadowed/dead rules, register ranges, static deadlock
// certification). With files, lints each rule program source.
//
//   rulelint [--json] [--werror] [--no-deadlock] [file...]
//   rulelint --emit-table [--json]
//   rulelint --faults <k> [--json] [--werror] [file...]
//
// --emit-table AOT-compiles every runnable corpus decision program — at the
// differential-test sizes and at the 4096-node scale — and dumps table stats
// (chosen tier, classifier, compression ratio, entries, bytes, fallback
// fraction). The gate fails unless every program reaches a non-VM tier, and
// the eager tiers (direct/compressed) leave zero presentable premise points
// to the VM fallback.
//
// --faults <k> runs the exhaustive bounded-fault certifier: every fault set
// of up to k link/node faults (plus the correlated regimes: a router with
// all its links, mesh rows, hypercube subcubes), quotiented to canonical
// orbits under the program-equivariant topology symmetries, each certified
// for deadlock freedom, static connectivity and progress. The JSON form is
// the machine-readable certificate artifact CI archives: the per-program x
// fault-regime verdict matrix, orbit statistics, witness fault sets, and
// certified-safe samples for dynamic spot checks.
//
// Exit status: 0 when clean (no errors; with --werror also no warnings),
// 1 when findings fail the gate, 2 on usage errors.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ruleanalysis/corpus_lint.hpp"

namespace {

using flexrouter::ruleanalysis::AnalysisReport;
using flexrouter::ruleanalysis::BaseReport;
using flexrouter::ruleanalysis::CorpusLintOptions;
using flexrouter::ruleanalysis::FaultCertOptions;
using flexrouter::ruleanalysis::FaultCertReport;
using flexrouter::ruleanalysis::FaultPattern;
using flexrouter::ruleanalysis::Finding;
using flexrouter::ruleanalysis::RegimeSummary;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<AnalysisReport>& reports, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const AnalysisReport& r = reports[i];
    os << (i ? ",\n " : "\n ") << "{\"program\": \"" << json_escape(r.program)
       << "\",\n  \"bases\": [";
    for (std::size_t b = 0; b < r.bases.size(); ++b) {
      const BaseReport& br = r.bases[b];
      os << (b ? ", " : "") << "{\"name\": \"" << json_escape(br.rule_base)
         << "\", \"states\": " << br.states
         << ", \"gap_states\": " << br.gap_states
         << ", \"exact\": " << (br.exact ? "true" : "false") << "}";
    }
    os << "],\n  \"info\": [";
    for (std::size_t k = 0; k < r.info.size(); ++k)
      os << (k ? ", " : "") << "\"" << json_escape(r.info[k]) << "\"";
    os << "],\n  \"findings\": [";
    for (std::size_t f = 0; f < r.findings.size(); ++f) {
      const Finding& fd = r.findings[f];
      os << (f ? ",\n   " : "") << "{\"class\": \"" << to_string(fd.cls)
         << "\", \"severity\": \"" << to_string(fd.severity)
         << "\", \"rule_base\": \"" << json_escape(fd.rule_base)
         << "\", \"rule_index\": " << fd.rule_index
         << ", \"line\": " << fd.line << ", \"message\": \""
         << json_escape(fd.message) << "\", \"witness\": \""
         << json_escape(fd.witness) << "\"}";
    }
    os << "]}";
  }
  os << "\n]\n";
}

void print_pattern_json(const FaultPattern& p, std::ostream& os) {
  os << "{\"display\": \"" << json_escape(p.to_string()) << "\", \"links\": [";
  for (std::size_t i = 0; i < p.links.size(); ++i)
    os << (i ? ", " : "") << "{\"node\": " << p.links[i].node
       << ", \"port\": " << p.links[i].port << "}";
  os << "], \"nodes\": [";
  for (std::size_t i = 0; i < p.nodes.size(); ++i)
    os << (i ? ", " : "") << p.nodes[i];
  os << "]}";
}

void print_fault_json(const std::vector<FaultCertReport>& reports,
                      std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const FaultCertReport& r = reports[i];
    os << (i ? ",\n " : "\n ") << "{\"program\": \"" << json_escape(r.program)
       << "\", \"topology\": \"" << json_escape(r.topology)
       << "\",\n  \"fault_tolerance\": " << r.fault_tolerance
       << ", \"certified\": " << (r.certified ? "true" : "false")
       << ",\n  \"symmetry\": {\"generators\": " << r.generators
       << ", \"generators_dropped\": " << r.generators_dropped
       << ", \"group_order\": " << r.group_order << ", \"group_complete\": "
       << (r.group_complete ? "true" : "false") << "},\n  \"orbits\": "
       << "{\"raw_fault_sets\": " << r.raw_fault_sets
       << ", \"orbit_count\": " << r.orbit_count
       << ", \"reduction_factor\": " << r.reduction_factor
       << ", \"decisions_evaluated\": " << r.stats.decisions_evaluated
       << ", \"decisions_reused\": " << r.stats.decisions_reused
       << ", \"baseline_decisions\": " << r.stats.baseline_decisions
       << ", \"orbits_checked\": " << r.stats.orbits_checked
       << ", \"orbits_expanded\": " << r.stats.orbits_expanded
       << ", \"members_checked\": " << r.stats.members_checked
       << "},\n  \"regimes\": [";
    for (std::size_t k = 0; k < r.regimes.size(); ++k) {
      const RegimeSummary& rs = r.regimes[k];
      os << (k ? ",\n   " : "") << "{\"name\": \"" << json_escape(rs.name)
         << "\", \"raw_sets\": " << rs.raw_sets << ", \"orbits\": "
         << rs.orbits << ", \"deadlock_failures\": " << rs.deadlock_failures
         << ", \"connectivity_failures\": " << rs.connectivity_failures
         << ", \"progress_failures\": " << rs.progress_failures
         << ", \"certified\": " << (rs.certified() ? "true" : "false") << "}";
    }
    os << "],\n  \"failing_sets\": [";
    for (std::size_t k = 0; k < r.failing_sets.size(); ++k) {
      os << (k ? ", " : "");
      print_pattern_json(r.failing_sets[k], os);
    }
    os << "],\n  \"certified_samples\": [";
    for (std::size_t k = 0; k < r.certified_samples.size(); ++k) {
      os << (k ? ", " : "");
      print_pattern_json(r.certified_samples[k], os);
    }
    os << "],\n  \"info\": [";
    for (std::size_t k = 0; k < r.info.size(); ++k)
      os << (k ? ", " : "") << "\"" << json_escape(r.info[k]) << "\"";
    os << "],\n  \"findings\": [";
    for (std::size_t f = 0; f < r.findings.size(); ++f) {
      const Finding& fd = r.findings[f];
      os << (f ? ",\n   " : "") << "{\"class\": \"" << to_string(fd.cls)
         << "\", \"severity\": \"" << to_string(fd.severity)
         << "\", \"rule_base\": \"" << json_escape(fd.rule_base)
         << "\", \"message\": \"" << json_escape(fd.message)
         << "\", \"witness\": \"" << json_escape(fd.witness) << "\"}";
    }
    os << "]}";
  }
  os << "\n]\n";
}

int cert_faults(int max_faults, bool json, bool werror,
                const std::vector<std::string>& files) {
  FaultCertOptions opts;
  opts.max_faults = max_faults;
  std::vector<FaultCertReport> reports;
  if (files.empty()) {
    reports = flexrouter::ruleanalysis::fault_cert_corpus(opts).reports;
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "rulelint: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream src;
      src << in.rdbuf();
      auto rep = flexrouter::ruleanalysis::fault_cert_source(src.str(), opts);
      if (!rep) {
        std::cerr << "rulelint: '" << path
                  << "' does not parse/validate, has no deadlock model, or "
                     "names no topology; cannot fault-certify\n";
        return 2;
      }
      reports.push_back(std::move(*rep));
    }
  }
  bool clean = !reports.empty();
  for (const FaultCertReport& r : reports)
    if (!r.clean(werror)) clean = false;
  if (json) {
    print_fault_json(reports, std::cout);
  } else {
    for (const FaultCertReport& r : reports) std::cout << r.to_string();
    std::cout << (clean ? "rulelint: fault certification clean"
                        : "rulelint: fault certification FAILED")
              << (werror ? " (warnings are errors)" : "") << "\n";
  }
  return clean ? 0 : 1;
}

int usage(std::ostream& os, int code) {
  os << "usage: rulelint [--json] [--werror] [--no-deadlock] [file...]\n"
        "       rulelint --emit-table [--json]\n"
        "       rulelint --faults <k> [--json] [--werror] [file...]\n"
        "Lints the built-in rule-base corpus, or the given rule program\n"
        "sources. --werror fails on warnings as well as errors.\n"
        "--emit-table dumps the AOT decision table stats (tier, classifier,\n"
        "compression ratio) for every runnable corpus program — including\n"
        "the 4096-node fabrics — and fails if any program stays on the VM\n"
        "tier or an eager table leaves presentable premise points to the VM\n"
        "fallback.\n"
        "--faults <k> certifies deadlock freedom, connectivity and progress\n"
        "under every fault set of up to k link/node faults plus correlated\n"
        "regimes, orbit-reduced under program-equivariant symmetries. With\n"
        "--json, emits the machine-readable certificate (verdict matrix,\n"
        "orbit statistics, witness fault sets).\n";
  return code;
}

int emit_table(bool json) {
  const std::vector<flexrouter::ruleanalysis::TableReport> reports =
      flexrouter::ruleanalysis::emit_table_corpus();
  bool clean = !reports.empty();
  for (const auto& r : reports) {
    // Every shipped program must reach a table tier. The eager tiers must
    // additionally pre-resolve every presentable point; the lazy tier fills
    // from the miss path, so only the tier choice is gated there.
    if (!r.active || r.tier == "vm") clean = false;
    if ((r.tier == "direct" || r.tier == "compressed") && r.fallback != 0)
      clean = false;
  }
  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      std::cout << (i ? ",\n " : "\n ") << "{\"program\": \""
                << json_escape(r.program) << "\", \"active\": "
                << (r.active ? "true" : "false") << ", \"tier\": \""
                << json_escape(r.tier) << "\", \"classifier\": \""
                << json_escape(r.classifier) << "\", \"tier_reason\": \""
                << json_escape(r.tier_reason)
                << "\", \"full_entries\": " << r.full_entries
                << ", \"compression_ratio\": " << r.compression_ratio
                << ", \"entries\": " << r.entries
                << ", \"resolved\": " << r.resolved
                << ", \"unreachable\": " << r.unreachable
                << ", \"fallback\": " << r.fallback << ", \"bytes\": "
                << r.bytes << ", \"fallback_fraction\": "
                << r.fallback_fraction << "}";
    }
    std::cout << "\n]\n";
  } else {
    std::cout << flexrouter::ruleanalysis::to_string(reports)
              << (clean ? "rulelint: all programs on a table tier, eager "
                          "tables 0% fallback"
                        : "rulelint: FAILED (VM tier or eager-table "
                          "fallback)")
              << "\n";
  }
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool table = false;
  int faults = -1;
  CorpusLintOptions opts;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--emit-table") {
      table = true;
    } else if (arg == "--faults") {
      if (i + 1 >= argc) {
        std::cerr << "rulelint: --faults needs a bound k\n";
        return usage(std::cerr, 2);
      }
      char* end = nullptr;
      const long k = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || k < 0 || k > 8) {
        std::cerr << "rulelint: --faults bound must be an integer in 0..8\n";
        return usage(std::cerr, 2);
      }
      faults = static_cast<int>(k);
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-deadlock") {
      opts.deadlock = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rulelint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      files.push_back(arg);
    }
  }

  if (table) {
    if (!files.empty() || faults >= 0) {
      std::cerr << "rulelint: --emit-table takes no file arguments and "
                   "composes with no other mode\n";
      return usage(std::cerr, 2);
    }
    return emit_table(json);
  }
  if (faults >= 0) return cert_faults(faults, json, werror, files);

  std::vector<AnalysisReport> reports;
  if (files.empty()) {
    reports = flexrouter::ruleanalysis::lint_corpus(opts).reports;
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "rulelint: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream src;
      src << in.rdbuf();
      AnalysisReport rep =
          flexrouter::ruleanalysis::lint_source(src.str(), opts);
      if (rep.program.empty() || rep.program == "<unparsed>")
        rep.program = path;
      reports.push_back(std::move(rep));
    }
  }

  bool clean = true;
  for (const AnalysisReport& r : reports)
    if (!r.clean(werror)) clean = false;

  if (json) {
    print_json(reports, std::cout);
  } else {
    for (const AnalysisReport& r : reports) std::cout << r.to_string();
    std::cout << (clean ? "rulelint: clean" : "rulelint: FAILED")
              << (werror ? " (warnings are errors)" : "") << "\n";
  }
  return clean ? 0 : 1;
}
