// The paper's Figure 2, live: a chain of faulty links attached to the
// southern border of a mesh. Shows NAFTA's propagated per-node fault state
// (deactivation, dead-end flags) as an ASCII map, then routes traffic
// across the wall and reports the detour cost as the chain grows.
//
//   $ ./mesh_fault_tolerance
#include <iostream>

#include "routing/nafta.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;

void print_state_map(const Mesh& m, const FaultSet& f, const Nafta& nafta) {
  std::cout << "    (X faulty node, # deactivated, e/w/n/s dead-end flag, "
               ". healthy; | marks a broken east link)\n";
  for (int y = m.radix(1) - 1; y >= 0; --y) {
    std::cout << "  ";
    for (int x = 0; x < m.radix(0); ++x) {
      const NodeId n = m.at(x, y);
      char c = '.';
      if (f.node_faulty(n)) c = 'X';
      else if (nafta.deactivated(n)) c = '#';
      else if (nafta.dead_end(n, Compass::East)) c = 'e';
      else if (nafta.dead_end(n, Compass::West)) c = 'w';
      else if (nafta.dead_end(n, Compass::North)) c = 'n';
      else if (nafta.dead_end(n, Compass::South)) c = 's';
      std::cout << c;
      const bool east_ok =
          x + 1 < m.radix(0) &&
          f.link_usable(n, port_of(Compass::East));
      std::cout << (x + 1 < m.radix(0) ? (east_ok ? '-' : '|') : ' ');
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  const int kW = 12, kH = 12;
  Mesh mesh = Mesh::two_d(kW, kH);
  UniformTraffic traffic(mesh);

  for (const int chain : {4, 8, 11}) {
    Nafta nafta;
    Network net(mesh, nafta);
    net.apply_faults([&](FaultSet& f) {
      inject_figure2_chain(f, mesh, 5, chain);   // wall between cols 5 and 6
      inject_concave_faults(f, mesh, 8, 8, 10, 10);  // plus an L-block
    });

    std::cout << "\n=== chain length " << chain
              << " (plus a concave fault block) ===\n";
    print_state_map(mesh, net.faults(), nafta);
    std::cout << "  deactivated nodes: " << nafta.num_deactivated() << "\n";

    SimConfig cfg;
    cfg.injection_rate = 0.02;
    cfg.packet_length = 4;
    cfg.warmup_cycles = 400;
    cfg.measure_cycles = 1200;
    cfg.seed = static_cast<std::uint64_t>(chain);
    Simulator sim(net, traffic, cfg);
    const SimResult r = sim.run();
    std::cout << "  " << r.to_string() << "\n";
    if (r.deadlock_suspected || r.delivered_packets != r.injected_packets) {
      std::cerr << "delivery failure\n";
      return 1;
    }
    // A packet that has to round the wall: bottom-left to bottom-right.
    std::cout << "  corner-to-corner across the wall: minimal "
              << mesh.distance(mesh.at(0, 0), mesh.at(kW - 1, 0))
              << " hops fault-free, now detouring above row " << chain
              << ".\n";
  }
  return 0;
}
