// flexsim — config-driven simulation driver (BookSim-style front end).
//
// Usage:
//   ./flexsim                       # built-in default experiment
//   ./flexsim my.cfg                # read a config file
//   ./flexsim my.cfg "rate = 0.2"   # extra overrides, last wins
//
// Config keys (all optional):
//   topology   = mesh | torus | hypercube      (default mesh)
//   width      = 8      height = 8             (mesh/torus)
//   dimension  = 4                             (hypercube)
//   algorithm  = nafta | nara | dor-mesh | dor-torus | ecube | route_c |
//                route_c_nft | updown | spanning-tree | negative-hop |
//                nara-rules | ft-mesh-rules (mesh) | ecube-rules (hypercube)
//                -- the *-rules algorithms run the corpus rule programs
//                   through RuleDrivenRouting instead of native C++
//   traffic    = uniform | transpose | tornado | bitcomp | hotspot |
//                permutation
//   rate       = 0.10                          (flits/node/cycle)
//   rates      = 0.02,0.06,0.10                (sweep: overrides rate)
//   threads    = 0                             (sweep workers; 0 = auto)
//   packet_length = 4
//   warmup     = 1000   measure = 2000
//   link_faults = 0     node_faults = 0
//   seed       = 1
//   show_links = false                         (top-5 link loads, single run)
//   shards     = 1                             (spatial shards; results are
//                                               bit-identical at any count)
//   shard_threads = 0                          (shard pool size; 0 = auto)
//   idle_skip  = false                         (skip provably-inert cycles;
//                                               implies event-driven mode)
//
// Live fault lifecycle (optional; arms the recovery controller):
//   fault_at   = 1500:link:27:1,2200:node:12   (timed mid-run kill events:
//                <cycle>:link:<node>:<port> or <cycle>:node:<id>)
//   repair_after = 800                         (repair every fault_at kill
//                                               that many cycles after it
//                                               lands; needs fault_at)
//   flap       = 27:1:1500:120:260             (intermittent link
//                <node>:<port>:<first_down>:<down_mean>:<up_mean> —
//                seeded on/off duty cycles until warmup + measure)
//   failslow   = 1500:27:1:8                   (<cycle>:<node>:<port>:<factor>
//                comma list: throttle the link to 1/factor bandwidth;
//                factor >= 2)
//   fault_regime = fail_stop | repair | flap | failslow | storm
//                                              (one seeded chaos pattern in
//                                               the campaign's vocabulary;
//                                               conflicts with fault_at)
//   detection_delay = 0                        (cycles before diagnosis)
//   max_retries     = 3                        (abort-and-retransmit budget)
//
// Rule-engine keys (need a *-rules algorithm; contract error otherwise):
//   exec_mode  = interp | vm | aot             (decision backend; default
//                                               aot, the pre-resolved table;
//                                               the summary line reports the
//                                               AOT tier actually chosen —
//                                               direct/compressed/lazy — or
//                                               why the VM kept serving)
//   swap_rules_at = 2000,new_rules.txt         (live hot-swap: at the cycle,
//                                               load the rule program from
//                                               the file and commit it under
//                                               traffic — quiescent drain
//                                               for stateful programs,
//                                               between-cycles otherwise)
//   swap_policy = auto | immediate | quiescent | rolling
//                                              (commit policy for the swap;
//                                               rolling drains and flips one
//                                               spatial shard at a time)
//   rolling_shards = 8                         (shards a rolling swap drains
//                                               sequentially)
//
// A multi-point sweep (rates with more than one entry) runs on the
// deterministic SweepRunner: one independent replica per offered load,
// per-point seeds derived from (seed, point index), results identical at
// any thread count. A single rate keeps the historical behaviour (the
// configured seed drives the one replica directly).
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "routing/dor_torus.hpp"
#include "routing/negative_hop.hpp"
#include "routing/rule_driven.hpp"
#include "rulebases/corpus.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sweep.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

using namespace flexrouter;

namespace {

std::vector<double> parse_rates(const Config& cfg) {
  std::vector<double> rates;
  const std::string list = cfg.get_string("rates", "");
  if (!list.empty()) {
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      if (tok.empty()) continue;
      rates.push_back(std::stod(tok));
    }
  }
  if (rates.empty()) rates.push_back(cfg.get_double("rate", 0.10));
  return rates;
}

/// Parse `fault_at = <cycle>:link:<node>:<port>,<cycle>:node:<id>,...`
/// into a FaultSchedule. Throws std::invalid_argument on malformed entries
/// (caught by the config error handler in main).
FaultSchedule parse_fault_schedule(const std::string& spec) {
  FaultSchedule schedule;
  std::istringstream is(spec);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    std::istringstream fields(entry);
    std::string cycle_s, kind, a, b;
    std::getline(fields, cycle_s, ':');
    std::getline(fields, kind, ':');
    std::getline(fields, a, ':');
    const Cycle at = std::stoll(cycle_s);
    if (kind == "link") {
      std::getline(fields, b, ':');
      schedule.fail_link_at(at, std::stoi(a), std::stoi(b));
    } else if (kind == "node") {
      schedule.fail_node_at(at, std::stoi(a));
    } else {
      throw std::invalid_argument("fault_at entry '" + entry +
                                  "': kind must be 'link' or 'node'");
    }
  }
  return schedule;
}

/// `repair_after = N`: schedule a matching repair N cycles after every
/// fault_at kill, turning each fail-stop event into a die -> reintegrate
/// round trip.
void append_repairs(FaultSchedule& schedule, Cycle delay) {
  const std::vector<FaultEvent> kills = schedule.events();  // copied: we push
  for (const FaultEvent& e : kills) {
    if (e.kind == FaultEvent::Kind::LinkFault)
      schedule.repair_link_at(e.at + delay, e.node, e.port);
    else if (e.kind == FaultEvent::Kind::NodeFault)
      schedule.repair_node_at(e.at + delay, e.node);
  }
}

/// `flap = <node>:<port>:<first_down>:<down_mean>:<up_mean>` — an
/// intermittent link flapping until the end of the measurement window.
void parse_flap(FaultSchedule& schedule, const std::string& spec,
                Cycle horizon, std::uint64_t seed) {
  std::istringstream fields(spec);
  std::string node_s, port_s, first_s, down_s, up_s;
  if (!(std::getline(fields, node_s, ':') &&
        std::getline(fields, port_s, ':') &&
        std::getline(fields, first_s, ':') &&
        std::getline(fields, down_s, ':') && std::getline(fields, up_s)))
    throw std::invalid_argument(
        "flap must be <node>:<port>:<first_down>:<down_mean>:<up_mean> "
        "(got '" +
        spec + "')");
  schedule.add_flapping_link(std::stoi(node_s), std::stoi(port_s),
                             std::stoll(first_s), horizon, std::stod(down_s),
                             std::stod(up_s), seed ^ 0xf1a9ULL);
}

/// `failslow = <cycle>:<node>:<port>:<factor>,...` — throttle links to one
/// flit per `factor` cycles. A factor below 2 is a contract error: a
/// fail-slow link still moves flits, it is just slower.
void parse_failslow(FaultSchedule& schedule, const std::string& spec) {
  std::istringstream is(spec);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    std::istringstream fields(entry);
    std::string cycle_s, node_s, port_s, factor_s;
    if (!(std::getline(fields, cycle_s, ':') &&
          std::getline(fields, node_s, ':') &&
          std::getline(fields, port_s, ':') &&
          std::getline(fields, factor_s)))
      throw std::invalid_argument("failslow entry '" + entry +
                                  "' must be <cycle>:<node>:<port>:<factor>");
    const int factor = std::stoi(factor_s);
    if (factor < 2)
      throw std::invalid_argument(
          "failslow entry '" + entry +
          "': factor must be >= 2 (a fail-slow link still moves flits)");
    schedule.degrade_link_at(std::stoll(cycle_s), std::stoi(node_s),
                             std::stoi(port_s), factor);
  }
}

/// `fault_regime = ...`: one seeded pattern from the chaos campaign's
/// vocabulary, sized to this run's warmup/measure window.
FaultSchedule build_regime_schedule(const std::string& regime,
                                    const Topology& topo, Cycle warmup,
                                    Cycle measure, std::uint64_t seed) {
  FaultSchedule s;
  SplitMix64 sm(seed ^ 0xc4a05ULL);
  const std::vector<LinkRef> links = topo.undirected_links();
  const LinkRef l =
      links[sm.next_below(static_cast<std::uint64_t>(links.size()))];
  const Cycle t1 = warmup + measure / 4;
  if (regime == "fail_stop") {
    s.fail_link_at(t1, l.node, l.port);
  } else if (regime == "repair") {
    s.fail_link_at(t1, l.node, l.port);
    s.repair_link_at(warmup + (3 * measure) / 4, l.node, l.port);
  } else if (regime == "flap") {
    s.add_flapping_link(l.node, l.port, t1, warmup + measure,
                        static_cast<double>(measure) / 10,
                        static_cast<double>(measure) / 5, sm.next());
  } else if (regime == "failslow") {
    s.degrade_link_at(t1, l.node, l.port, 8);
  } else if (regime == "storm") {
    if (const auto* cube = dynamic_cast<const Hypercube*>(&topo)) {
      const auto all =
          (std::uint64_t{1} << static_cast<unsigned>(cube->dimension())) - 1;
      const std::uint64_t free_bit =
          std::uint64_t{1}
          << sm.next_below(static_cast<std::uint64_t>(cube->dimension()));
      const std::uint64_t mask = all ^ free_bit;
      s.add_subcube_storm(topo, t1, mask, sm.next() & mask);
    } else {
      int rx = 0, ry = 0;
      if (const auto* mesh = dynamic_cast<const Mesh*>(&topo)) {
        rx = mesh->radix(0);
        ry = mesh->radix(1);
      } else if (const auto* tor = dynamic_cast<const Torus*>(&topo)) {
        rx = tor->radix(0);
        ry = tor->radix(1);
      }
      const int x =
          static_cast<int>(sm.next_below(static_cast<std::uint64_t>(rx - 1)));
      const int y =
          static_cast<int>(sm.next_below(static_cast<std::uint64_t>(ry)));
      s.add_region_storm(topo, t1, {x, y}, {x + 1, y});
    }
  } else {
    throw std::invalid_argument(
        "fault_regime must be fail_stop, repair, flap, failslow or storm "
        "(got '" +
        regime + "')");
  }
  return s;
}

bool rule_driven_name(const std::string& aname) {
  return aname == "nara-rules" || aname == "ft-mesh-rules" ||
         aname == "ecube-rules";
}

rules::ExecMode parse_exec_mode(const std::string& mode) {
  if (mode == "interp") return rules::ExecMode::Interpret;
  if (mode == "vm") return rules::ExecMode::Vm;
  if (mode == "aot") return rules::ExecMode::Aot;
  throw std::invalid_argument("exec_mode must be interp, vm or aot (got '" +
                              mode + "')");
}

Simulator::RuleSwapPolicy parse_swap_policy(const std::string& policy) {
  if (policy == "auto") return Simulator::RuleSwapPolicy::Auto;
  if (policy == "immediate") return Simulator::RuleSwapPolicy::Immediate;
  if (policy == "quiescent") return Simulator::RuleSwapPolicy::Quiescent;
  if (policy == "rolling") return Simulator::RuleSwapPolicy::Rolling;
  throw std::invalid_argument(
      "swap_policy must be auto, immediate, quiescent or rolling (got '" +
      policy + "')");
}

/// One-line AOT tier report for the summary: which tier serves decisions
/// and — when the VM kept serving — why the tables stayed off.
std::string tier_summary(const RuleDrivenRouting& rd) {
  const RuleDrivenRouting::AotTierInfo ti = rd.aot_tier_info();
  std::ostringstream os;
  os << " [tier " << RuleDrivenRouting::tier_name(ti.tier);
  if (ti.classifier != rules::DestClassifier::None)
    os << ", " << rules::to_string(ti.classifier);
  if (ti.compression_ratio > 1.0)
    os << ", " << ti.compression_ratio << "x compression";
  if (ti.tier == RuleDrivenRouting::AotTier::Vm && !ti.reason.empty())
    os << ": " << ti.reason;
  os << "]";
  return os.str();
}

/// The *-rules algorithms need the topology's construction parameters (the
/// corpus generators are parameterised the same way), so they take the
/// config rather than the built Topology.
std::unique_ptr<RoutingAlgorithm> build_rule_algorithm(
    const std::string& aname, const std::string& tname, const Config& cfg,
    rules::ExecMode mode) {
  const int w = static_cast<int>(cfg.get_int("width", 8));
  const int h = static_cast<int>(cfg.get_int("height", 8));
  const int d = static_cast<int>(cfg.get_int("dimension", 4));
  if (aname == "ecube-rules") {
    if (tname != "hypercube")
      throw std::invalid_argument("ecube-rules needs topology = hypercube");
    return std::make_unique<RuleDrivenRouting>(
        rulebases::ecube_route_source(d), 1, mode);
  }
  if (tname != "mesh")
    throw std::invalid_argument(aname + " needs topology = mesh");
  if (aname == "nara-rules")
    return std::make_unique<RuleDrivenRouting>(
        rulebases::nara_route_source(w, h), 2, mode);
  return std::make_unique<RuleDrivenRouting>(
      rulebases::ft_mesh_route_source(w, h), 3, mode, "route",
      /*escape_vc=*/2);
}

std::unique_ptr<RoutingAlgorithm> build_algorithm(const std::string& aname,
                                                  const std::string& tname,
                                                  const Config& cfg,
                                                  rules::ExecMode mode,
                                                  const Topology& topo) {
  if (rule_driven_name(aname))
    return build_rule_algorithm(aname, tname, cfg, mode);
  if (aname == "negative-hop")
    return std::make_unique<NegativeHop>(NegativeHop::vcs_needed_for(topo));
  if (aname == "dor-torus") return std::make_unique<DimensionOrderTorus>();
  return make_algorithm(aname);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      cfg = cfg.overridden_by(arg.find('=') != std::string::npos
                                  ? Config::parse(arg)
                                  : Config::from_file(arg));
    }
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  // Topology (shared by every replica — it is immutable).
  std::unique_ptr<Topology> topo;
  const std::string tname = cfg.get_string("topology", "mesh");
  if (tname == "mesh") {
    topo = std::make_unique<Mesh>(std::vector<int>{
        static_cast<int>(cfg.get_int("width", 8)),
        static_cast<int>(cfg.get_int("height", 8))});
  } else if (tname == "torus") {
    topo = std::make_unique<Torus>(std::vector<int>{
        static_cast<int>(cfg.get_int("width", 8)),
        static_cast<int>(cfg.get_int("height", 8))});
  } else if (tname == "hypercube") {
    topo = std::make_unique<Hypercube>(
        static_cast<int>(cfg.get_int("dimension", 4)));
  } else {
    std::cerr << "unknown topology '" << tname << "'\n";
    return 2;
  }

  const std::string aname = cfg.get_string("algorithm", "nafta");

  // Rule-engine keys: both are contracts on the algorithm choice — a
  // decision backend or a live program swap only mean something when the
  // router is executing rules.
  const std::string exec_mode_s = cfg.get_string("exec_mode", "");
  const std::string swap_spec = cfg.get_string("swap_rules_at", "");
  if ((!exec_mode_s.empty() || !swap_spec.empty()) &&
      !rule_driven_name(aname)) {
    std::cerr << "config error: "
              << (!exec_mode_s.empty() ? "exec_mode" : "swap_rules_at")
              << " needs a rule-driven algorithm (nara-rules, ft-mesh-rules "
                 "or ecube-rules); algorithm = '"
              << aname << "' executes no rules\n";
    return 2;
  }
  rules::ExecMode exec_mode = rules::ExecMode::Aot;
  Cycle swap_at = 0;
  std::string swap_source;
  auto swap_policy = Simulator::RuleSwapPolicy::Auto;
  try {
    if (!exec_mode_s.empty()) exec_mode = parse_exec_mode(exec_mode_s);
    const std::string policy_s = cfg.get_string("swap_policy", "");
    if (!policy_s.empty()) {
      if (swap_spec.empty())
        throw std::invalid_argument(
            "swap_policy needs a scheduled swap (swap_rules_at)");
      swap_policy = parse_swap_policy(policy_s);
    }
    if (!swap_spec.empty()) {
      const std::size_t comma = swap_spec.find(',');
      if (comma == std::string::npos)
        throw std::invalid_argument(
            "swap_rules_at must be <cycle>,<file> (got '" + swap_spec + "')");
      swap_at = std::stoll(swap_spec.substr(0, comma));
      const std::string path = swap_spec.substr(comma + 1);
      std::ifstream in(path);
      if (!in)
        throw std::invalid_argument("swap_rules_at: cannot read rule file '" +
                                    path + "'");
      std::ostringstream buf;
      buf << in.rdbuf();
      swap_source = buf.str();
    }
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  const std::string pattern = cfg.get_string("traffic", "uniform");
  const auto link_faults = static_cast<int>(cfg.get_int("link_faults", 0));
  const auto node_faults = static_cast<int>(cfg.get_int("node_faults", 0));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const std::vector<double> rates = parse_rates(cfg);
  const bool single = rates.size() == 1;

  SimConfig base;
  base.packet_length = static_cast<int>(cfg.get_int("packet_length", 4));
  base.warmup_cycles = cfg.get_int("warmup", 1000);
  base.measure_cycles = cfg.get_int("measure", 2000);
  base.detection_delay = cfg.get_int("detection_delay", 0);
  base.max_retries = static_cast<int>(cfg.get_int("max_retries", 3));
  base.idle_skip = cfg.get_bool("idle_skip", false);
  base.rolling_shards = static_cast<int>(cfg.get_int("rolling_shards", 8));

  NetworkConfig ncfg;
  ncfg.shards = static_cast<int>(cfg.get_int("shards", 1));
  ncfg.shard_threads = static_cast<int>(cfg.get_int("shard_threads", 0));
  // Idle skipping needs the event-driven worklists even at one shard.
  ncfg.event_driven = base.idle_skip;

  FaultSchedule schedule;
  try {
    schedule = parse_fault_schedule(cfg.get_string("fault_at", ""));
    const std::string regime = cfg.get_string("fault_regime", "");
    if (!regime.empty()) {
      if (!schedule.empty())
        throw std::invalid_argument(
            "fault_regime generates its own schedule and conflicts with "
            "fault_at — pick one");
      schedule = build_regime_schedule(regime, *topo, base.warmup_cycles,
                                       base.measure_cycles, seed);
    }
    const Cycle repair_after = cfg.get_int("repair_after", 0);
    if (repair_after < 0)
      throw std::invalid_argument("repair_after must be >= 0");
    if (repair_after > 0) {
      if (cfg.get_string("fault_at", "").empty())
        throw std::invalid_argument(
            "repair_after needs fault_at kill events to repair");
      append_repairs(schedule, repair_after);
    }
    const std::string flap_spec = cfg.get_string("flap", "");
    if (!flap_spec.empty())
      parse_flap(schedule, flap_spec,
                 base.warmup_cycles + base.measure_cycles, seed);
    parse_failslow(schedule, cfg.get_string("failslow", ""));
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  // One grid point per offered load. Each replica applies the SAME fault
  // pattern (the fault RNG restarts per point) so the series varies only
  // in load.
  int exchanges = 0;
  std::string link_report;
  std::string tier_report;  // AOT tier of the first point's algorithm
  std::vector<SweepPoint> points;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];
    const bool first_point = i == 0;
    points.push_back({[&, rate, first_point](std::uint64_t derived_seed) {
      auto algo = build_algorithm(aname, tname, cfg, exec_mode, *topo);
      auto traffic = make_traffic(pattern, *topo, seed);
      Network net(*topo, *algo, ncfg);
      if (link_faults > 0 || node_faults > 0) {
        Rng frng(seed ^ 0xfa017ULL);
        const int ex = net.apply_faults([&](FaultSet& f) {
          inject_random_node_faults(f, node_faults, frng);
          inject_random_link_faults(f, link_faults, frng);
        });
        if (first_point) exchanges = ex;  // identical on every point
      }
      if (first_point)
        if (const auto* rd = dynamic_cast<const RuleDrivenRouting*>(algo.get()))
          tier_report = tier_summary(*rd);
      SimConfig scfg = base;
      scfg.injection_rate = rate;
      scfg.seed = single ? seed : derived_seed;
      Simulator sim(net, *traffic, scfg);
      if (!schedule.empty()) sim.set_fault_schedule(schedule);
      if (!swap_source.empty())
        sim.schedule_rule_swap(swap_at, swap_source, swap_policy);
      SimResult r = sim.run();
      if (single && cfg.get_bool("show_links", false)) {
        std::ostringstream os;
        os << "hottest links (flits/cycle):\n";
        const auto loads = net.link_utilization(sim.now());
        for (std::size_t j = 0; j < std::min<std::size_t>(5, loads.size());
             ++j)
          os << "  node " << loads[j].from << " port " << loads[j].port
             << ": " << loads[j].utilization << "\n";
        link_report = os.str();
      }
      return r;
    }});
  }

  SweepOptions sopts;
  sopts.num_threads =
      single ? 1 : static_cast<int>(cfg.get_int("threads", 0));
  sopts.base_seed = seed;
  SweepRunner runner(sopts);

  std::vector<SimResult> results;
  try {
    results = runner.run(points);
  } catch (const std::exception& e) {
    std::cerr << "simulation error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "flexsim: " << topo->name() << ", " << aname << ", " << pattern
            << " traffic";
  if (link_faults > 0 || node_faults > 0)
    std::cout << ", " << link_faults << " link + " << node_faults
              << " node faults (reconfiguration: " << exchanges
              << " exchanges)";
  if (ncfg.shards > 1) std::cout << ", " << ncfg.shards << " shards";
  if (base.idle_skip) std::cout << ", idle-skip";
  if (rule_driven_name(aname))
    std::cout << ", exec " << (exec_mode_s.empty() ? "aot" : exec_mode_s)
              << tier_report;
  if (!swap_source.empty()) {
    std::cout << ", rule swap at cycle " << swap_at << " ("
              << results[0].rule_swaps << " committed, "
              << results[0].swap_gated_cycles << " gated cycles";
    if (results[0].swap_gated_node_cycles > 0)
      std::cout << ", " << results[0].swap_gated_node_cycles
                << " gated node-cycles";
    std::cout << ")";
  }
  if (!single)
    std::cout << ", sweep of " << rates.size() << " loads on "
              << runner.num_threads() << " threads";
  std::cout << "\n";

  bool deadlock = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!single) std::cout << "rate " << rates[i] << ": ";
    std::cout << results[i].to_string() << "\n";
    deadlock = deadlock || results[i].deadlock_suspected;
  }
  if (!single) {
    const SweepReport rep = summarize(results);
    std::cout << rep.to_string() << "\n";
  }
  if (!link_report.empty()) std::cout << link_report;
  return deadlock ? 1 : 0;
}
