// flexsim — config-driven simulation driver (BookSim-style front end).
//
// Usage:
//   ./flexsim                       # built-in default experiment
//   ./flexsim my.cfg                # read a config file
//   ./flexsim my.cfg "rate = 0.2"   # extra overrides, last wins
//
// Config keys (all optional):
//   topology   = mesh | torus | hypercube      (default mesh)
//   width      = 8      height = 8             (mesh/torus)
//   dimension  = 4                             (hypercube)
//   algorithm  = nafta | nara | dor-mesh | dor-torus | ecube | route_c |
//                route_c_nft | updown | spanning-tree | negative-hop
//   traffic    = uniform | transpose | tornado | bitcomp | hotspot |
//                permutation
//   rate       = 0.10                          (flits/node/cycle)
//   packet_length = 4
//   warmup     = 1000   measure = 2000
//   link_faults = 0     node_faults = 0
//   seed       = 1
//   show_links = false                         (top-5 link loads)
#include <iostream>

#include "common/config.hpp"
#include "routing/dor_torus.hpp"
#include "routing/negative_hop.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

using namespace flexrouter;

int main(int argc, char** argv) {
  Config cfg;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      cfg = cfg.overridden_by(arg.find('=') != std::string::npos
                                  ? Config::parse(arg)
                                  : Config::from_file(arg));
    }
  } catch (const std::exception& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  // Topology.
  std::unique_ptr<Topology> topo;
  const std::string tname = cfg.get_string("topology", "mesh");
  if (tname == "mesh") {
    topo = std::make_unique<Mesh>(std::vector<int>{
        static_cast<int>(cfg.get_int("width", 8)),
        static_cast<int>(cfg.get_int("height", 8))});
  } else if (tname == "torus") {
    topo = std::make_unique<Torus>(std::vector<int>{
        static_cast<int>(cfg.get_int("width", 8)),
        static_cast<int>(cfg.get_int("height", 8))});
  } else if (tname == "hypercube") {
    topo = std::make_unique<Hypercube>(
        static_cast<int>(cfg.get_int("dimension", 4)));
  } else {
    std::cerr << "unknown topology '" << tname << "'\n";
    return 2;
  }

  // Algorithm (the factory covers most; the parameterised ones are special).
  std::unique_ptr<RoutingAlgorithm> algo;
  const std::string aname = cfg.get_string("algorithm", "nafta");
  try {
    if (aname == "negative-hop") {
      algo = std::make_unique<NegativeHop>(NegativeHop::vcs_needed_for(*topo));
    } else if (aname == "dor-torus") {
      algo = std::make_unique<DimensionOrderTorus>();
    } else {
      algo = make_algorithm(aname);
    }
  } catch (const std::exception& e) {
    std::cerr << "algorithm error: " << e.what() << "\n";
    return 2;
  }

  Network net(*topo, *algo);

  // Faults (keeping the healthy graph connected, assumption iii).
  const auto link_faults = static_cast<int>(cfg.get_int("link_faults", 0));
  const auto node_faults = static_cast<int>(cfg.get_int("node_faults", 0));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  int exchanges = 0;
  if (link_faults > 0 || node_faults > 0) {
    Rng frng(seed ^ 0xfa017ULL);
    exchanges = net.apply_faults([&](FaultSet& f) {
      inject_random_node_faults(f, node_faults, frng);
      inject_random_link_faults(f, link_faults, frng);
    });
  }

  auto traffic =
      make_traffic(cfg.get_string("traffic", "uniform"), *topo, seed);

  SimConfig scfg;
  scfg.injection_rate = cfg.get_double("rate", 0.10);
  scfg.packet_length = static_cast<int>(cfg.get_int("packet_length", 4));
  scfg.warmup_cycles = cfg.get_int("warmup", 1000);
  scfg.measure_cycles = cfg.get_int("measure", 2000);
  scfg.seed = seed;
  Simulator sim(net, *traffic, scfg);

  std::cout << "flexsim: " << topo->name() << ", " << algo->name() << " ("
            << algo->num_vcs() << " VCs), " << traffic->name()
            << " traffic at " << scfg.injection_rate << " flits/node/cycle";
  if (!net.faults().fault_free())
    std::cout << ", " << net.faults().num_link_faults() << " link + "
              << net.faults().num_node_faults()
              << " node faults (reconfiguration: " << exchanges
              << " exchanges)";
  std::cout << "\n";

  const SimResult r = sim.run();
  std::cout << r.to_string() << "\n";

  if (cfg.get_bool("show_links", false)) {
    std::cout << "hottest links (flits/cycle):\n";
    const auto loads = net.link_utilization(sim.now());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, loads.size()); ++i)
      std::cout << "  node " << loads[i].from << " port " << loads[i].port
                << ": " << loads[i].utilization << "\n";
  }
  return r.deadlock_suspected ? 1 : 0;
}
