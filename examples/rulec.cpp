// rulec — the paper's "Rule Compiler" as a command-line tool: parse a rule
// program, validate it, compile every rule base through ARON, and print the
// configuration report (table dimensions, feature axes, FCFB inventory,
// register budget) that Section 5 tabulates.
//
//   $ ./rulec program.rules            # compile a file
//   $ ./rulec --demo                   # compile the built-in NAFTA corpus
//   $ echo 'ON go IF 1=1 THEN !x();END' | ./rulec -
#include <fstream>
#include <iostream>
#include <sstream>

#include "rulebases/corpus.hpp"
#include "ruleengine/hwcost.hpp"
#include "ruleengine/lexer.hpp"
#include "ruleengine/parser.hpp"
#include "ruleengine/validate.hpp"

using namespace flexrouter;

int main(int argc, char** argv) {
  std::string source;
  if (argc < 2) {
    std::cerr << "usage: rulec <file.rules | - | --demo>\n";
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--demo") {
    source = rulebases::nafta_program_source(16, 16);
  } else if (arg == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    source = buf.str();
  } else {
    std::ifstream in(arg);
    if (!in.good()) {
      std::cerr << "rulec: cannot open " << arg << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  // 1. Parse.
  rules::Program prog;
  try {
    prog = rules::parse_program(source);
  } catch (const rules::ParseError& e) {
    std::cerr << "rulec: syntax error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "parsed program '" << prog.name << "': "
            << prog.rule_bases.size() << " rule bases, "
            << prog.variables.size() << " registers, " << prog.inputs.size()
            << " inputs\n";

  // 2. Validate.
  const auto diags = rules::validate_program(prog);
  if (!diags.empty()) {
    std::cerr << "rulec: " << diags.size() << " semantic error(s):\n";
    for (const auto& d : diags) std::cerr << "  " << d.to_string() << "\n";
    return 1;
  }
  std::cout << "validation: clean\n\n";

  // 3. Compile and report.
  try {
    rules::Interpreter interp(prog);
    std::int64_t total_bits = 0;
    for (const auto& rb : prog.rule_bases) {
      const auto compiled = rules::compile_rule_base(prog, rb, interp);
      std::cout << compiled.describe(prog.syms) << "\n";
      std::cout << "  pipeline delay: " << compiled.decision_delay_units()
                << " units (2 FCFB stages + table access)\n\n";
      total_bits += compiled.table_bits();
    }
    std::cout << "total rule-table memory: " << total_bits << " bits\n";
    std::cout << "register file: " << prog.total_register_bits() << " bits in "
              << prog.variables.size() << " registers\n";
  } catch (const rules::CompileError& e) {
    std::cerr << "rulec: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
