// Deadlock lab: the channel-dependency-graph checker as a design tool.
//
// A naive "fully adaptive minimal, one VC" mesh router looks harmless and
// works at low load — and deadlocks in the field. This example (1) shows
// the CDG checker catching the cycle statically, with a witness, (2) shows
// the repaired double-network version (NARA) passing, and (3) demonstrates
// the dynamic counterpart: the naive router locking up in the simulator at
// load while NARA sails through. Verification before silicon — the point
// of having routing algorithms as analysable objects.
//
//   $ ./deadlock_lab
#include <iostream>

#include "routing/cdg.hpp"
#include "routing/nara.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;

/// The classic mistake: all minimal directions, one virtual channel.
class NaiveAdaptive final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "naive-adaptive"; }
  int num_vcs() const override { return 1; }
  void attach(const Topology& topo, const FaultSet&) override {
    mesh_ = dynamic_cast<const Mesh*>(&topo);
    FR_REQUIRE(mesh_ != nullptr);
  }
  RouteDecision route(const RouteContext& ctx) const override {
    RouteDecision d;
    if (ctx.dest == ctx.node) {
      d.candidates.push_back({mesh_->degree(), 0, 0});
      return d;
    }
    const int dx = mesh_->x_of(ctx.dest) - mesh_->x_of(ctx.node);
    const int dy = mesh_->y_of(ctx.dest) - mesh_->y_of(ctx.node);
    if (dx > 0) d.candidates.push_back({port_of(Compass::East), 0, 0});
    if (dx < 0) d.candidates.push_back({port_of(Compass::West), 0, 0});
    if (dy > 0) d.candidates.push_back({port_of(Compass::North), 0, 0});
    if (dy < 0) d.candidates.push_back({port_of(Compass::South), 0, 0});
    return d;
  }

 private:
  const Mesh* mesh_ = nullptr;
};

}  // namespace

int main() {
  Mesh mesh = Mesh::two_d(5, 5);
  FaultSet faults(mesh);

  std::cout << "1) Static analysis\n";
  NaiveAdaptive naive;
  naive.attach(mesh, faults);
  const CdgReport bad = check_full_cdg(mesh, faults, naive);
  std::cout << "   naive-adaptive: " << bad.to_string() << "\n";

  Nara nara;
  nara.attach(mesh, faults);
  const CdgReport good = check_full_cdg(mesh, faults, nara);
  std::cout << "   nara (double networks, 2 VCs): " << good.to_string()
            << "\n\n";

  std::cout << "2) The same verdicts, dynamically (uniform traffic, load "
               "0.45, 10-flit worms, 2-flit buffers, 6x6 mesh)\n";
  Mesh big = Mesh::two_d(6, 6);
  for (const bool use_nara : {false, true}) {
    std::unique_ptr<RoutingAlgorithm> algo;
    if (use_nara) algo = std::make_unique<Nara>();
    else algo = std::make_unique<NaiveAdaptive>();
    NetworkConfig ncfg;
    ncfg.router.buffer_depth = 2;  // long worms span many routers
    Network net(big, *algo, ncfg);
    UniformTraffic traffic(big);
    SimConfig cfg;
    cfg.injection_rate = 0.45;
    cfg.packet_length = 10;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 1500;
    cfg.drain_limit = 60000;
    cfg.watchdog_window = 2500;
    cfg.seed = 3;
    Simulator sim(net, traffic, cfg);
    const SimResult r = sim.run();
    std::cout << "   " << algo->name() << ": " << r.to_string() << "\n";
  }
  std::cout << "\nThe CDG cycle above is not a theoretical nicety: the naive\n"
               "router wedges (watchdog fires, packets stranded) exactly as\n"
               "the static check predicted, while NARA — same adaptivity,\n"
               "one more VC, cycle-free by construction — delivers all of\n"
               "it. Every algorithm in this repository ships with this check\n"
               "in its test suite.\n";
  return 0;
}
