// Quickstart: build an 8x8 mesh network running the fault-tolerant NAFTA
// router, break two links at runtime (quiescent reconfiguration), and watch
// the network keep delivering.
//
//   $ ./quickstart
#include <iostream>

#include "routing/nafta.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace flexrouter;

  // 1. Topology + routing algorithm + network.
  Mesh mesh = Mesh::two_d(8, 8);
  Nafta nafta;                 // 3 VCs: 2 adaptive + 1 escape
  Network net(mesh, nafta);    // wires routers and links

  // 2. Drive it with uniform random traffic.
  UniformTraffic traffic(mesh);
  SimConfig cfg;
  cfg.injection_rate = 0.08;   // flits per node per cycle
  cfg.packet_length = 4;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 1500;
  Simulator sim(net, traffic, cfg);

  std::cout << "fault-free:\n  " << sim.run().to_string() << "\n";

  // 3. Break two links. apply_faults requires a quiesced network (the
  //    paper's fault assumption iv: messages are not affected during the
  //    diagnosis phase), so drain first.
  if (!sim.quiesce()) {
    std::cerr << "network failed to drain\n";
    return 1;
  }
  const int exchanges = net.apply_faults([&](FaultSet& f) {
    f.fail_link(mesh.at(3, 3), port_of(Compass::East));
    f.fail_link(mesh.at(4, 2), port_of(Compass::North));
  });
  std::cout << "\ninjected 2 link faults; reconfiguration cost "
            << exchanges << " neighbour exchanges\n";

  // 4. Same traffic, degraded network: everything still arrives, decisions
  //    now take 2-3 rule interpretations instead of 1.
  std::cout << "with faults:\n  " << sim.run().to_string() << "\n";
  return 0;
}
