// Authoring a routing algorithm in the rule language and running it on the
// simulated router — the paper's flexibility pitch end-to-end: "the
// description of a routing algorithm is compact and intuitive allowing even
// non-experts to understand and modify the network behavior."
//
// The custom algorithm is O1TURN-style: virtual channel 0 carries packets
// routed XY, virtual channel 1 carries YX; injected packets are offered
// both networks and the router's adaptivity selection (free buffer space)
// picks one. Each virtual network alone is dimension-ordered and therefore
// cycle-free, so the scheme is deadlock-free with two VCs — and it
// outperforms plain XY on adversarial transpose traffic, which this program
// demonstrates without touching a single line of router C++.
//
//   $ ./custom_rulebase
#include <iostream>

#include "routing/rule_driven.hpp"
#include "sim/simulator.hpp"

namespace {

const char* kO1Turn = R"(
PROGRAM o1turn;
CONSTANT width = 8
CONSTANT height = 8
CONSTANT vcs = 2
INPUT xpos IN 0 TO width-1
INPUT ypos IN 0 TO height-1
INPUT xdes IN 0 TO width-1
INPUT ydes IN 0 TO height-1
INPUT in_vc IN vcs
INPUT injected IN 0 TO 1

ON route
  IF xpos = xdes AND ypos = ydes THEN !cand(4, 0, 0);
  -- injection: offer the first hop of both the XY (vc 0) and YX (vc 1)
  -- networks; the router's load measure picks the emptier one.
  IF injected = 1 AND xpos < xdes AND ypos < ydes
    THEN !cand(0, 0, 0), !cand(2, 1, 0);
  IF injected = 1 AND xpos < xdes AND ypos > ydes
    THEN !cand(0, 0, 0), !cand(3, 1, 0);
  IF injected = 1 AND xpos > xdes AND ypos < ydes
    THEN !cand(1, 0, 0), !cand(2, 1, 0);
  IF injected = 1 AND xpos > xdes AND ypos > ydes
    THEN !cand(1, 0, 0), !cand(3, 1, 0);
  IF injected = 1 AND xpos < xdes AND ypos = ydes
    THEN !cand(0, 0, 0), !cand(0, 1, 0);
  IF injected = 1 AND xpos > xdes AND ypos = ydes
    THEN !cand(1, 0, 0), !cand(1, 1, 0);
  IF injected = 1 AND xpos = xdes AND ypos < ydes
    THEN !cand(2, 0, 0), !cand(2, 1, 0);
  IF injected = 1 AND xpos = xdes AND ypos > ydes
    THEN !cand(3, 0, 0), !cand(3, 1, 0);
  -- in-network, vc 0: strict XY order.
  IF injected = 0 AND in_vc = 0 AND xpos < xdes THEN !cand(0, 0, 0);
  IF injected = 0 AND in_vc = 0 AND xpos > xdes THEN !cand(1, 0, 0);
  IF injected = 0 AND in_vc = 0 AND xpos = xdes AND ypos < ydes
    THEN !cand(2, 0, 0);
  IF injected = 0 AND in_vc = 0 AND xpos = xdes AND ypos > ydes
    THEN !cand(3, 0, 0);
  -- in-network, vc 1: strict YX order.
  IF injected = 0 AND in_vc = 1 AND ypos < ydes THEN !cand(2, 1, 0);
  IF injected = 0 AND in_vc = 1 AND ypos > ydes THEN !cand(3, 1, 0);
  IF injected = 0 AND in_vc = 1 AND ypos = ydes AND xpos < xdes
    THEN !cand(0, 1, 0);
  IF injected = 0 AND in_vc = 1 AND ypos = ydes AND xpos > xdes
    THEN !cand(1, 1, 0);
END route;
)";

/// Plain XY in the rule language, for the head-to-head comparison.
const char* kPlainXY = R"(
PROGRAM plain_xy;
CONSTANT width = 8
CONSTANT height = 8
INPUT xpos IN 0 TO width-1
INPUT ypos IN 0 TO height-1
INPUT xdes IN 0 TO width-1
INPUT ydes IN 0 TO height-1
ON route
  IF xpos = xdes AND ypos = ydes THEN !cand(4, 0, 0);
  IF xpos < xdes THEN !cand(0, 0, 0);
  IF xpos > xdes THEN !cand(1, 0, 0);
  IF xpos = xdes AND ypos < ydes THEN !cand(2, 0, 0);
  IF xpos = xdes AND ypos > ydes THEN !cand(3, 0, 0);
END route;
)";

}  // namespace

int main() {
  using namespace flexrouter;
  Mesh mesh = Mesh::two_d(8, 8);
  TransposeTraffic traffic(mesh);  // adversarial for XY

  std::cout << "transpose traffic on an 8x8 mesh, two rule programs:\n\n";
  for (const double rate : {0.10, 0.20, 0.30}) {
    for (const bool custom : {false, true}) {
      RuleDrivenRouting algo(custom ? kO1Turn : kPlainXY, custom ? 2 : 1,
                             rules::ExecMode::Table);
      Network net(mesh, algo);
      SimConfig cfg;
      cfg.injection_rate = rate;
      cfg.packet_length = 4;
      cfg.warmup_cycles = 500;
      cfg.measure_cycles = 1200;
      cfg.seed = 11;
      Simulator sim(net, traffic, cfg);
      const SimResult r = sim.run();
      std::cout << "  " << (custom ? "o1turn  " : "plain_xy") << "  rate "
                << rate << ":  " << r.to_string() << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "The custom two-network program (18 rules, compiled to ARON\n"
               "tables) carries the adversarial pattern at loads where the\n"
               "oblivious program saturates — no router redesign needed;\n"
               "that is the rule-based router's pitch.\n";
  return 0;
}
