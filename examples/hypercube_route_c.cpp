// ROUTE_C on a 64-node hypercube: watch the safe/unsafe node-state lattice
// evolve as node faults accumulate (the paper's Figure 4 state machine at
// network scale), up to the easily detected "totally unsafe" situation —
// and verify the network delivers the whole way.
//
//   $ ./hypercube_route_c
#include <iostream>

#include "routing/route_c.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace flexrouter;

void print_states(const Hypercube& h, const RouteC& rc) {
  int safe = 0, ounsafe = 0, sunsafe = 0, faulty = 0;
  for (NodeId n = 0; n < h.num_nodes(); ++n) {
    switch (rc.state(n)) {
      case NodeState::Safe: ++safe; break;
      case NodeState::OrdinarilyUnsafe: ++ounsafe; break;
      case NodeState::StronglyUnsafe: ++sunsafe; break;
      case NodeState::Faulty: ++faulty; break;
    }
  }
  std::cout << "  states: " << safe << " safe, " << ounsafe
            << " ordinarily-unsafe, " << sunsafe << " strongly-unsafe, "
            << faulty << " faulty"
            << (rc.totally_unsafe() ? "  [TOTALLY UNSAFE]" : "") << "\n";
  // Dump the unsafe nodes with their addresses (binary).
  for (NodeId n = 0; n < h.num_nodes(); ++n) {
    if (rc.state(n) == NodeState::Safe) continue;
    std::cout << "    node " << n << " (";
    for (int b = h.dimension() - 1; b >= 0; --b)
      std::cout << ((n >> b) & 1);
    std::cout << ") -> " << to_string(rc.state(n)) << "\n";
  }
}

}  // namespace

int main() {
  Hypercube cube(6);  // 64 nodes, the paper's evaluation size
  RouteC route_c;
  Network net(cube, route_c);
  UniformTraffic traffic(cube);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.packet_length = 4;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 800;
  Simulator sim(net, traffic, cfg);

  Rng rng(64);
  for (int round = 0; round <= 4; ++round) {
    if (round > 0) {
      if (!sim.quiesce()) {
        std::cerr << "drain failed\n";
        return 1;
      }
      const int exchanges = net.apply_faults([&](FaultSet& f) {
        inject_random_node_faults(f, 2, rng);
        inject_random_link_faults(f, 1, rng);
      });
      std::cout << "\n=== round " << round
                << ": +2 node faults, +1 link fault (reconfiguration: "
                << exchanges << " exchanges) ===\n";
    } else {
      std::cout << "=== round 0: fault-free ===\n";
    }
    print_states(cube, route_c);
    const SimResult r = sim.run();
    std::cout << "  " << r.to_string() << "\n";
    if (r.deadlock_suspected) {
      std::cerr << "deadlock suspected\n";
      return 1;
    }
  }
  std::cout << "\nEvery decision took exactly 2 rule interpretations "
               "(decide_dir + decide_vc),\nthe constant fault-tolerance "
               "time cost of ROUTE_C.\n";
  return 0;
}
